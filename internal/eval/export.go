package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// This file exports experiment results as CSV for external plotting: each
// driver's structured output has a writer, so cmd/experiments -format csv
// can feed gnuplot/matplotlib directly.

// WritePredictionCSV emits one row per (method, bin): method, bin_low,
// count, rmse.
func WritePredictionCSV(w io.Writer, reports []PredictionReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "bin_low", "count", "rmse"}); err != nil {
		return err
	}
	for _, r := range reports {
		for _, b := range r.Bins {
			rec := []string{r.Method, strconv.Itoa(b.BinLow), strconv.Itoa(b.Count),
				formatFloat(b.RMSE)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCaptureCSV emits one row per (method, abs_error): the Figure 4
// series.
func WriteCaptureCSV(w io.Writer, reports []PredictionReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "abs_error", "ratio"}); err != nil {
		return err
	}
	for _, r := range reports {
		for _, c := range r.Capture {
			if err := cw.Write([]string{r.Method, strconv.Itoa(c.AbsError), formatFloat(c.Ratio)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScatterCSV emits one row per (method, test case): the Figure 2(b)
// scatter.
func WriteScatterCSV(w io.Writer, reports []PredictionReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "actual", "predicted"}); err != nil {
		return err
	}
	for _, r := range reports {
		for _, s := range r.Scatter {
			if err := cw.Write([]string{r.Method, strconv.Itoa(s.Actual), formatFloat(s.Predicted)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSpreadCurvesCSV emits one row per (method, k): the Figure 6 series.
func WriteSpreadCurvesCSV(w io.Writer, curves []SpreadCurve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "k", "spread"}); err != nil {
		return err
	}
	for _, c := range curves {
		for i, k := range c.Ks {
			if err := cw.Write([]string{c.Method, strconv.Itoa(k), formatFloat(c.Spread[i])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRuntimeCSV emits one row per (method, seed index): the Figure 7
// series in milliseconds.
func WriteRuntimeCSV(w io.Writer, series []RuntimeSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "k", "elapsed_ms"}); err != nil {
		return err
	}
	for _, s := range series {
		for i, e := range s.Elapsed {
			rec := []string{s.Method, strconv.Itoa(i + 1),
				formatFloat(float64(e) / float64(time.Millisecond))}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalabilityCSV emits the Figure 8/9 points.
func WriteScalabilityCSV(w io.Writer, points []ScalePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tuples", "runtime_ms", "uc_entries", "approx_bytes", "spread", "true_seeds"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.Tuples),
			formatFloat(float64(p.Runtime) / float64(time.Millisecond)),
			strconv.FormatInt(p.UCEntries, 10),
			strconv.FormatInt(p.ApproxBytes, 10),
			formatFloat(p.Spread),
			strconv.Itoa(p.TrueSeeds),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTruncationCSV emits the Table 4 rows.
func WriteTruncationCSV(w io.Writer, points []TruncationPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lambda", "spread", "true_seeds", "uc_entries", "approx_bytes", "runtime_ms"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			formatFloat(p.Lambda),
			formatFloat(p.Spread),
			strconv.Itoa(p.TrueSeeds),
			strconv.FormatInt(p.UCEntries, 10),
			strconv.FormatInt(p.ApproxBytes, 10),
			formatFloat(float64(p.Runtime) / float64(time.Millisecond)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteIntersectionCSV emits the Table 2 / Figure 5 matrix as rows of
// (method_a, method_b, intersection).
func WriteIntersectionCSV(w io.Writer, sets *SeedSets) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method_a", "method_b", "intersection"}); err != nil {
		return err
	}
	m := sets.Matrix()
	for i, a := range sets.Names {
		for j, b := range sets.Names {
			if j < i {
				continue
			}
			if err := cw.Write([]string{a, b, strconv.Itoa(m[i][j])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }
