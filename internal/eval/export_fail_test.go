package eval

import (
	"errors"
	"testing"
	"time"

	"credist/internal/graph"
)

// failWriter fails after allowing n bytes, exercising the error paths of
// every CSV exporter.
type failWriter struct{ left int }

var errBoom = errors.New("boom")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errBoom
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errBoom
	}
	return n, nil
}

func TestCSVWritersPropagateErrors(t *testing.T) {
	reports := []PredictionReport{{
		Method:  "X",
		Bins:    []BinRMSE{{BinLow: 0, Count: 1, RMSE: 2}},
		Capture: []CapturePoint{{AbsError: 0, Ratio: 0.5}},
		Scatter: []ScatterPoint{{Actual: 1, Predicted: 2}},
	}}
	curves := []SpreadCurve{{Method: "X", Ks: []int{1}, Spread: []float64{1}}}
	series := []RuntimeSeries{{Method: "X", Elapsed: []time.Duration{time.Millisecond}}}
	points := []ScalePoint{{Tuples: 1}}
	trunc := []TruncationPoint{{Lambda: 0.1}}
	var sets SeedSets
	sets.Add("A", []graph.NodeID{1})

	cases := []struct {
		name string
		fn   func(w *failWriter) error
	}{
		{"prediction", func(w *failWriter) error { return WritePredictionCSV(w, reports) }},
		{"capture", func(w *failWriter) error { return WriteCaptureCSV(w, reports) }},
		{"scatter", func(w *failWriter) error { return WriteScatterCSV(w, reports) }},
		{"curves", func(w *failWriter) error { return WriteSpreadCurvesCSV(w, curves) }},
		{"runtime", func(w *failWriter) error { return WriteRuntimeCSV(w, series) }},
		{"scale", func(w *failWriter) error { return WriteScalabilityCSV(w, points) }},
		{"trunc", func(w *failWriter) error { return WriteTruncationCSV(w, trunc) }},
		{"intersect", func(w *failWriter) error { return WriteIntersectionCSV(w, &sets) }},
	}
	for _, c := range cases {
		if err := c.fn(&failWriter{left: 3}); err == nil {
			t.Errorf("%s: write error swallowed", c.name)
		}
		if err := c.fn(&failWriter{left: 1 << 20}); err != nil {
			t.Errorf("%s: unexpected error on healthy writer: %v", c.name, err)
		}
	}
}
