package eval

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"credist/internal/actionlog"
	"credist/internal/cascade"
	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/datagen"
	"credist/internal/graph"
	"credist/internal/heuristic"
	"credist/internal/probs"
	"credist/internal/seedsel"
)

// ExpOptions gathers the knobs shared by the experiment drivers. Zero
// values select laptop-scale defaults; the paper's settings are noted per
// field.
type ExpOptions struct {
	// K is the seed-set size (paper: 50).
	K int
	// Trials is the Monte-Carlo simulation count (paper: 10,000).
	Trials int
	// Lambda is the CD truncation threshold (paper default: 0.001).
	Lambda float64
	// Seed drives every randomized component.
	Seed uint64
	// Theta is the PMIA/LDAG influence threshold.
	Theta float64
	// Workers bounds the CD engine's scan and CELF gain fan-out
	// (0 = GOMAXPROCS). Results are bit-identical at any worker count —
	// the same determinism rule the serving layer's /seeds obeys — so the
	// knob only trades wall-clock time.
	Workers int
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.K == 0 {
		o.K = 50
	}
	if o.Trials == 0 {
		o.Trials = MCTrials
	}
	if o.Lambda == 0 {
		o.Lambda = 0.001
	}
	if o.Theta == 0 {
		o.Theta = heuristic.DefaultTheta
	}
	return o
}

func (o ExpOptions) methodOptions() MethodOptions {
	return MethodOptions{Trials: o.Trials, Seed: o.Seed}
}

// --- Table 1 -------------------------------------------------------------

// Table1 prints dataset statistics for the given configurations,
// reproducing the layout of the paper's Table 1.
func Table1(w io.Writer, cfgs []datagen.Config) []actionlog.Stats {
	fmt.Fprintf(w, "%-16s %10s %12s %10s %14s %10s\n",
		"dataset", "#nodes", "#dir.edges", "avg.deg", "#propagations", "#tuples")
	var out []actionlog.Stats
	for _, cfg := range cfgs {
		ds := datagen.Generate(cfg)
		st := actionlog.Summarize(ds.Log)
		out = append(out, st)
		fmt.Fprintf(w, "%-16s %10d %12d %10.1f %14d %10d\n",
			cfg.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), ds.Graph.AvgDegree(),
			st.NumActions, st.NumTuples)
	}
	return out
}

// --- Section 3: Table 2 and Figure 2 --------------------------------------

// Table2 runs Experiment 1 of Section 3: select K seeds under the IC model
// with each probability-assignment method (UN, WC, TV, EM, PT) and report
// the pairwise seed-set intersections. Selection uses the PMIA estimator
// with CELF, the accelerated pipeline the paper itself falls back to where
// MC greedy is impractical.
func Table2(w io.Writer, env *Env, opts ExpOptions) *SeedSets {
	opts = opts.withDefaults()
	weights := Section3Weights(env, opts.methodOptions())
	sets := &SeedSets{}
	for _, name := range []string{"UN", "WC", "TV", "EM", "PT"} {
		est := heuristic.NewPMIA(weights[name], opts.Theta)
		res := seedsel.CELF(est, opts.K)
		sets.Add(name, res.Seeds)
	}
	fmt.Fprintf(w, "Seed set intersections (k=%d) on %s under IC:\n%s", opts.K, env.Name, sets.RenderMatrix())
	return sets
}

// Figure2 runs Experiment 2 of Section 3: spread prediction accuracy of
// UN/TV/WC/EM/PT against test-set ground truth. It prints binned RMSE
// (panels a and c) and returns the reports (whose Scatter fields are panel
// b).
func Figure2(w io.Writer, env *Env, opts ExpOptions) []PredictionReport {
	opts = opts.withDefaults()
	reports := RunSpreadPrediction(env, Section3Predictors(env, opts.methodOptions()),
		binWidthFor(env), errGridFor(env))
	renderRMSE(w, env, reports)
	return reports
}

// --- Section 6: Figures 3-9, Table 4 --------------------------------------

// Figure3 compares spread-prediction RMSE of the learned IC, LT, and CD
// models (binned by actual spread).
func Figure3(w io.Writer, env *Env, opts ExpOptions) []PredictionReport {
	opts = opts.withDefaults()
	reports := RunSpreadPrediction(env, Section6Predictors(env, opts.methodOptions()),
		binWidthFor(env), errGridFor(env))
	renderRMSE(w, env, reports)
	return reports
}

// Figure4 reports, for the same three models, the fraction of test
// propagations predicted within each absolute-error budget.
func Figure4(w io.Writer, env *Env, opts ExpOptions) []PredictionReport {
	opts = opts.withDefaults()
	reports := RunSpreadPrediction(env, Section6Predictors(env, opts.methodOptions()),
		binWidthFor(env), errGridFor(env))
	fmt.Fprintf(w, "Ratio of propagations captured within absolute error on %s:\n", env.Name)
	fmt.Fprintf(w, "%8s", "abs.err")
	for _, r := range reports {
		fmt.Fprintf(w, "%8s", r.Method)
	}
	fmt.Fprintln(w)
	for i := range reports[0].Capture {
		fmt.Fprintf(w, "%8d", reports[0].Capture[i].AbsError)
		for _, r := range reports {
			fmt.Fprintf(w, "%8.3f", r.Capture[i].Ratio)
		}
		fmt.Fprintln(w)
	}
	return reports
}

// ModelSeedSets selects K seeds under each learned model (IC via PMIA over
// EM probabilities, LT via LDAG over learned weights, CD via its engine
// with CELF), the inputs to Figure 5 and Figure 6.
func ModelSeedSets(env *Env, opts ExpOptions) *SeedSets {
	opts = opts.withDefaults()
	sets := &SeedSets{}

	icW := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{})
	icRes := seedsel.CELF(heuristic.NewPMIA(icW, opts.Theta), opts.K)
	sets.Add("IC", icRes.Seeds)

	ltW := probs.LearnLTWeights(env.Graph, env.Train)
	ltRes := seedsel.CELF(heuristic.NewLDAG(ltW, opts.Theta), opts.K)
	sets.Add("LT", ltRes.Seeds)

	sets.Add("CD", SelectCD(env, opts).Seeds)
	return sets
}

// SelectCD selects seeds with the paper's algorithm: time-aware credit
// scan plus greedy/CELF over the engine, through the same shared
// selection engine serve's /seeds uses — so Figure 5/6/7 seed sets match
// a served snapshot of the same dataset bit for bit (pinned by the
// serve-parity regression test).
func SelectCD(env *Env, opts ExpOptions) seedsel.Result {
	opts = opts.withDefaults()
	credit := core.LearnTimeAware(env.Graph, env.Train)
	engine := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: opts.Lambda, Credit: credit, Workers: opts.Workers})
	// The Workers knob bounds the CELF gain fan-out too, not just the
	// scan; results are bit-identical either way.
	return celf.Run(engine, opts.K, celf.Options{Workers: engine.Workers()})
}

// Figure5 reports the pairwise intersections of the IC, LT, and CD seed
// sets.
func Figure5(w io.Writer, env *Env, opts ExpOptions) *SeedSets {
	sets := ModelSeedSets(env, opts)
	fmt.Fprintf(w, "Model seed-set intersections (k=%d) on %s:\n%s",
		opts.withDefaults().K, env.Name, sets.RenderMatrix())
	return sets
}

// SpreadCurve is one Figure 6 series: spread achieved (under the CD
// model, the most accurate available proxy for ground truth) by the first
// k seeds of a method, for each k in Ks.
type SpreadCurve struct {
	Method string
	Ks     []int
	Spread []float64
	// MeanSeedActions is the average number of training actions performed
	// by the method's seeds — the diagnostic behind the paper's
	// observation that IC's seeds are barely-active users (its "user
	// 168766" post-mortem: IC seeds averaged 30.3 actions against the CD
	// seeds' 1108.7).
	MeanSeedActions float64
}

// Figure6 scores the seed sets of CD, LT, IC, High Degree, and PageRank by
// the spread the CD model predicts for their prefixes.
func Figure6(w io.Writer, env *Env, opts ExpOptions) []SpreadCurve {
	opts = opts.withDefaults()
	sets := ModelSeedSets(env, opts)
	sets.Add("HighDeg", seedsel.HighDegree(env.Graph, opts.K))
	sets.Add("PageRank", seedsel.PageRankSeeds(env.Graph, opts.K, graph.PageRankOptions{}))

	credit := core.LearnTimeAware(env.Graph, env.Train)
	ev := core.NewEvaluator(env.Graph, env.Train, credit)

	ks := kGrid(opts.K)
	curves := make([]SpreadCurve, 0, len(sets.Names))
	for i, name := range sets.Names {
		curve := SpreadCurve{Method: name, Ks: ks}
		for _, k := range ks {
			prefix := sets.Sets[i]
			if k < len(prefix) {
				prefix = prefix[:k]
			}
			curve.Spread = append(curve.Spread, ev.Spread(prefix))
		}
		total := 0
		for _, s := range sets.Sets[i] {
			total += env.Train.ActionCount(s)
		}
		if len(sets.Sets[i]) > 0 {
			curve.MeanSeedActions = float64(total) / float64(len(sets.Sets[i]))
		}
		curves = append(curves, curve)
	}

	fmt.Fprintf(w, "Influence spread under CD model on %s:\n%8s", env.Name, "k")
	for _, c := range curves {
		fmt.Fprintf(w, "%10s", c.Method)
	}
	fmt.Fprintln(w)
	for i, k := range ks {
		fmt.Fprintf(w, "%8d", k)
		for _, c := range curves {
			fmt.Fprintf(w, "%10.1f", c.Spread[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%8s", "actions")
	for _, c := range curves {
		fmt.Fprintf(w, "%10.1f", c.MeanSeedActions)
	}
	fmt.Fprintln(w)
	return curves
}

// RuntimeSeries is one Figure 7 series: cumulative selection time per
// seed count.
type RuntimeSeries struct {
	Method  string
	Elapsed []time.Duration // Elapsed[i] is time to select i+1 seeds
}

// Figure7 times seed selection under MC-greedy IC, MC-greedy LT, and the
// CD engine. The absolute numbers shrink with our reduced trials and
// dataset scale, but the orders-of-magnitude gap between simulation-based
// greedy and the CD engine is the figure's point and survives.
func Figure7(w io.Writer, env *Env, opts ExpOptions) []RuntimeSeries {
	opts = opts.withDefaults()
	var series []RuntimeSeries

	icW := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{})
	icMC := cascade.NewMCEstimator(icW, cascade.IC, cascade.MCOptions{Trials: opts.Trials, Seed: opts.Seed})
	icRes := seedsel.CELF(cascade.NewGreedyEstimator(icMC), opts.K)
	series = append(series, RuntimeSeries{Method: "IC", Elapsed: icRes.Elapsed})

	ltW := probs.LearnLTWeights(env.Graph, env.Train)
	ltMC := cascade.NewMCEstimator(ltW, cascade.LT, cascade.MCOptions{Trials: opts.Trials, Seed: opts.Seed})
	ltRes := seedsel.CELF(cascade.NewGreedyEstimator(ltMC), opts.K)
	series = append(series, RuntimeSeries{Method: "LT", Elapsed: ltRes.Elapsed})

	start := time.Now()
	cdRes := SelectCD(env, opts)
	// Engine construction (the log scan) dominates CD cost; fold it into
	// every point like the paper's end-to-end timings do.
	scanAdjusted := make([]time.Duration, len(cdRes.Elapsed))
	base := time.Since(start) - lastOr0(cdRes.Elapsed)
	for i, e := range cdRes.Elapsed {
		scanAdjusted[i] = base + e
	}
	series = append(series, RuntimeSeries{Method: "CD", Elapsed: scanAdjusted})

	fmt.Fprintf(w, "Seed-selection runtime on %s (k=%d, %d MC trials):\n", env.Name, opts.K, opts.Trials)
	for _, s := range series {
		fmt.Fprintf(w, "%4s: total %v\n", s.Method, lastOr0(s.Elapsed))
	}
	return series
}

func lastOr0(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	return d[len(d)-1]
}

// ScalePoint is one Figure 8/9 measurement at a training-log size.
type ScalePoint struct {
	Tuples    int
	Runtime   time.Duration
	UCEntries int64
	// ApproxBytes estimates UC memory: two mirrored map entries per credit.
	ApproxBytes int64
	Spread      float64 // spread of chosen seeds under the full-log evaluator
	TrueSeeds   int     // overlap with seeds chosen on the full training log
}

// Scalability runs Figures 8 and 9 in one sweep: for nested samples of the
// training propagations, select K seeds with the CD engine and record
// runtime, memory, spread (scored by the full-log evaluator), and overlap
// with the full-log ("true") seeds.
func Scalability(w io.Writer, env *Env, fractions []float64, opts ExpOptions) []ScalePoint {
	opts = opts.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	}
	credit := core.LearnTimeAware(env.Graph, env.Train)
	fullEv := core.NewEvaluator(env.Graph, env.Train, credit)

	// Random nested sample order, as the paper samples traces randomly.
	rng := rand.New(rand.NewPCG(opts.Seed, 0xfeedbeef))
	order := rng.Perm(env.Train.NumActions())

	var trueSeeds []graph.NodeID
	var points []ScalePoint
	for fi := len(fractions) - 1; fi >= 0; fi-- {
		// Iterate largest-first so the full run defines the true seeds.
		n := int(fractions[fi] * float64(env.Train.NumActions()))
		if n < 1 {
			n = 1
		}
		actions := make([]actionlog.ActionID, n)
		for i := 0; i < n; i++ {
			actions[i] = actionlog.ActionID(order[i])
		}
		sub := env.Train.Restrict(actions)

		start := time.Now()
		subCredit := core.LearnTimeAware(env.Graph, sub)
		engine := core.NewEngine(env.Graph, sub, core.Options{Lambda: opts.Lambda, Credit: subCredit, Workers: opts.Workers})
		res := celf.Run(engine, opts.K, celf.Options{Workers: engine.Workers()})
		elapsed := time.Since(start)

		if fi == len(fractions)-1 {
			trueSeeds = res.Seeds
		}
		points = append(points, ScalePoint{
			Tuples:      sub.NumTuples(),
			Runtime:     elapsed,
			UCEntries:   engine.Entries(),
			ApproxBytes: engine.Entries() * ucEntryBytes,
			Spread:      fullEv.Spread(res.Seeds),
			TrueSeeds:   Overlap(res.Seeds, trueSeeds),
		})
	}
	// Reverse into ascending-tuples order for reporting.
	for i, j := 0, len(points)-1; i < j; i, j = i+1, j-1 {
		points[i], points[j] = points[j], points[i]
	}

	fmt.Fprintf(w, "CD scalability on %s (k=%d):\n", env.Name, opts.K)
	fmt.Fprintf(w, "%10s %12s %12s %14s %10s %10s\n",
		"tuples", "runtime", "UC entries", "approx.mem", "spread", "true.seeds")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %12v %12d %14s %10.1f %10d\n",
			p.Tuples, p.Runtime.Round(time.Millisecond), p.UCEntries,
			humanBytes(p.ApproxBytes), p.Spread, p.TrueSeeds)
	}
	return points
}

// ucEntryBytes approximates the in-memory cost of one UC credit: a float64
// value plus two map-entry overheads (forward and mirror index).
const ucEntryBytes = 64

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// TruncationPoint is one Table 4 row.
type TruncationPoint struct {
	Lambda      float64
	Spread      float64
	TrueSeeds   int
	UCEntries   int64
	ApproxBytes int64
	Runtime     time.Duration
}

// Table4 sweeps the truncation threshold lambda and reports its effect on
// spread, seed quality (overlap with the finest-lambda seeds), memory, and
// runtime.
func Table4(w io.Writer, env *Env, lambdas []float64, opts ExpOptions) []TruncationPoint {
	opts = opts.withDefaults()
	if len(lambdas) == 0 {
		lambdas = []float64{0.1, 0.01, 0.001, 0.0005, 0.0001}
	}
	credit := core.LearnTimeAware(env.Graph, env.Train)
	ev := core.NewEvaluator(env.Graph, env.Train, credit)

	var points []TruncationPoint
	var trueSeeds []graph.NodeID
	// Finest lambda defines the "true seeds"; run it first.
	for i := len(lambdas) - 1; i >= 0; i-- {
		lam := lambdas[i]
		start := time.Now()
		engine := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: lam, Credit: credit, Workers: opts.Workers})
		res := celf.Run(engine, opts.K, celf.Options{Workers: engine.Workers()})
		elapsed := time.Since(start)
		if i == len(lambdas)-1 {
			trueSeeds = res.Seeds
		}
		points = append(points, TruncationPoint{
			Lambda:      lam,
			Spread:      ev.Spread(res.Seeds),
			TrueSeeds:   Overlap(res.Seeds, trueSeeds),
			UCEntries:   engine.Entries(),
			ApproxBytes: engine.Entries() * ucEntryBytes,
			Runtime:     elapsed,
		})
	}
	for i, j := 0, len(points)-1; i < j; i, j = i+1, j-1 {
		points[i], points[j] = points[j], points[i]
	}

	fmt.Fprintf(w, "Effect of truncation threshold on %s (k=%d):\n", env.Name, opts.K)
	fmt.Fprintf(w, "%10s %10s %10s %12s %14s %12s\n",
		"lambda", "spread", "true.seeds", "UC entries", "approx.mem", "runtime")
	for _, p := range points {
		fmt.Fprintf(w, "%10g %10.1f %10d %12d %14s %12v\n",
			p.Lambda, p.Spread, p.TrueSeeds, p.UCEntries,
			humanBytes(p.ApproxBytes), p.Runtime.Round(time.Millisecond))
	}
	return points
}

// --- shared helpers --------------------------------------------------------

func renderRMSE(w io.Writer, env *Env, reports []PredictionReport) {
	fmt.Fprintf(w, "RMSE vs actual spread on %s:\n", env.Name)
	fmt.Fprintf(w, "%10s %8s", "bin", "count")
	for _, r := range reports {
		fmt.Fprintf(w, "%10s", r.Method)
	}
	fmt.Fprintln(w)
	if len(reports) == 0 {
		return
	}
	for i, bin := range reports[0].Bins {
		fmt.Fprintf(w, "%10d %8d", bin.BinLow, bin.Count)
		for _, r := range reports {
			fmt.Fprintf(w, "%10.1f", r.Bins[i].RMSE)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%10s %8s", "overall", "")
	for _, r := range reports {
		fmt.Fprintf(w, "%10.1f", r.OverallRMSE)
	}
	fmt.Fprintln(w)
}

// binWidthFor picks the RMSE bin width from the test-set size scale, the
// analogue of the paper's dataset-specific bin choices (100 for Flixster,
// 20 for Flickr).
func binWidthFor(env *Env) int {
	maxActual := 0
	for _, tc := range env.GroundTruth {
		if tc.Actual > maxActual {
			maxActual = tc.Actual
		}
	}
	width := maxActual / 8
	if width < 5 {
		width = 5
	}
	return width
}

// errGridFor picks the Figure 4 absolute-error grid to span the observed
// spread scale.
func errGridFor(env *Env) []int {
	maxActual := 0
	for _, tc := range env.GroundTruth {
		if tc.Actual > maxActual {
			maxActual = tc.Actual
		}
	}
	step := maxActual / 16
	if step < 1 {
		step = 1
	}
	grid := make([]int, 0, 16)
	for e := 0; e <= maxActual; e += step {
		grid = append(grid, e)
	}
	return grid
}

// kGrid returns 1 plus multiples of max(1, k/10) up to k.
func kGrid(k int) []int {
	step := k / 10
	if step < 1 {
		step = 1
	}
	grid := []int{1}
	for v := step; v <= k; v += step {
		if v != 1 {
			grid = append(grid, v)
		}
	}
	if grid[len(grid)-1] != k {
		grid = append(grid, k)
	}
	return grid
}
