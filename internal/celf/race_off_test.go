//go:build !race

package celf_test

// raceEnabled is false without the race detector; see race_on_test.go.
const raceEnabled = false
