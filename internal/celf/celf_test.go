package celf_test

import (
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"credist/internal/cascade"
	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/datagen"
	"credist/internal/graph"
	"credist/internal/ris"
	"credist/internal/seedsel"
)

// celfDemo is a small deterministic dataset for the CD-estimator tests.
func celfDemo() *datagen.Dataset {
	return datagen.Generate(datagen.Config{
		Name: "celf-demo", NumUsers: 250, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 150, MeanInfluence: 0.12, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 7,
	})
}

// freshEngine scans the demo dataset with the given credit rule.
func freshEngine(t testing.TB, simple bool) *core.Engine {
	t.Helper()
	ds := celfDemo()
	var credit core.CreditModel
	if !simple {
		credit = core.LearnTimeAware(ds.Graph, ds.Log)
	}
	return core.NewEngine(ds.Graph, ds.Log, core.Options{Lambda: 0.001, Credit: credit})
}

func requireSameSelection(t *testing.T, what string, want, got celf.Result) {
	t.Helper()
	if len(want.Seeds) != len(got.Seeds) {
		t.Fatalf("%s: %d vs %d seeds", what, len(got.Seeds), len(want.Seeds))
	}
	spreadWant, spreadGot := 0.0, 0.0
	for i := range want.Seeds {
		if want.Seeds[i] != got.Seeds[i] || want.Gains[i] != got.Gains[i] {
			t.Fatalf("%s: diverged at seed %d: (%d, %b) vs (%d, %b)",
				what, i, got.Seeds[i], got.Gains[i], want.Seeds[i], want.Gains[i])
		}
		// Per-prefix spreads are cumulative gain sums; identical gains in
		// identical order make every prefix spread bit-identical too.
		spreadWant += want.Gains[i]
		spreadGot += got.Gains[i]
		if spreadWant != spreadGot {
			t.Fatalf("%s: prefix spread diverged at %d: %b vs %b", what, i, spreadGot, spreadWant)
		}
	}
}

// TestParallelCELFDeterministicCD is the determinism wall for the CD
// estimator: seeds and per-prefix spreads must be bit-identical for
// Workers: 1 versus GOMAXPROCS (and an explicit over-subscribed count),
// under both the time-aware and the simple credit rule.
func TestParallelCELFDeterministicCD(t *testing.T) {
	for _, simple := range []bool{false, true} {
		name := "time-aware"
		if simple {
			name = "simple"
		}
		t.Run(name, func(t *testing.T) {
			base := freshEngine(t, simple)
			base.Compact()
			serial := celf.Run(base.Clone(), 25, celf.Options{Workers: 1})
			if len(serial.Seeds) != 25 {
				t.Fatalf("serial run selected %d seeds, want 25", len(serial.Seeds))
			}
			for _, workers := range []int{runtime.GOMAXPROCS(0), 4, 13} {
				parallel := celf.Run(base.Clone(), 25, celf.Options{Workers: workers})
				requireSameSelection(t, name, serial, parallel)
			}
		})
	}
}

// TestParallelCELFDeterministicRIS covers the second estimator family the
// issue pins: greedy maximum coverage over RIS samples, Workers: 1 vs
// GOMAXPROCS vs an explicit fan-out.
func TestParallelCELFDeterministicRIS(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 23))
	b := graph.NewBuilder(80)
	for e := 0; e < 400; e++ {
		u, v := graph.NodeID(rng.IntN(80)), graph.NodeID(rng.IntN(80))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := cascade.NewWeights(g)
	for u := int32(0); u < 80; u++ {
		for _, v := range g.Out(u) {
			_ = w.Set(u, v, 0.1+0.2*rng.Float64())
		}
	}
	col := ris.Collect(ris.NewSampler(w, cascade.IC), 5000, 3)
	serial := celf.Run(col.Estimator(), 12, celf.Options{Workers: 1})
	for _, workers := range []int{runtime.GOMAXPROCS(0), 4} {
		parallel := celf.Run(col.Estimator(), 12, celf.Options{Workers: workers})
		requireSameSelection(t, "ris", serial, parallel)
	}
}

// TestParallelCELFActuallyFaster asserts — not just reports — that the
// parallel gain fan-out beats serial on hardware that can express it.
// It self-skips below 4 CPUs (a 1-core runner cannot show a speedup; the
// speculative refreshes even make forced parallelism slower there, which
// is why Workers defaults to GOMAXPROCS), under -race and -short (a
// wall-clock assertion has no place in the correctness gate), and uses a
// deliberately lenient 1.25x floor with best-of-2 timing so shared CI
// runners don't flake; CI runs it in its own non-race step, and the full
// 1/2/4/8-worker curve and the ≥3x-at-8-workers target live in
// BenchmarkCELFParallel.
func TestParallelCELFActuallyFaster(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock assertion is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 CPUs to observe a parallel speedup, have %d", runtime.NumCPU())
	}
	ds := datagen.Generate(datagen.Config{
		Name: "celf-speedup", NumUsers: 1500, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 1100, MeanInfluence: 0.12, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 7,
	})
	credit := core.LearnTimeAware(ds.Graph, ds.Log)
	base := core.NewEngine(ds.Graph, ds.Log, core.Options{Lambda: 0.001, Credit: credit})
	base.Compact()
	const k = 30
	bestOf2 := func(workers int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 2; i++ {
			start := time.Now()
			if res := celf.Run(base.Clone(), k, celf.Options{Workers: workers}); len(res.Seeds) != k {
				t.Fatalf("selected %d seeds, want %d", len(res.Seeds), k)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := bestOf2(1)
	parallel := bestOf2(4)
	if speedup := float64(serial) / float64(parallel); speedup < 1.25 {
		t.Errorf("4-worker CELF speedup = %.2fx (serial %v, parallel %v), want >= 1.25x",
			speedup, serial, parallel)
	}
}

// TestCELFMatchesGreedyOnEngine pins that the shared engine's lazy
// (and speculative-refresh) evaluation never changes the selection: CELF
// over the CD engine equals plain greedy, seed for seed, bit for bit.
func TestCELFMatchesGreedyOnEngine(t *testing.T) {
	base := freshEngine(t, false)
	base.Compact()
	greedy := seedsel.Greedy(base.Clone(), 10)
	for _, workers := range []int{1, 4} {
		lazy := celf.Run(base.Clone(), 10, celf.Options{Workers: workers})
		requireSameSelection(t, "greedy-vs-celf", greedy, lazy)
		if lazy.Lookups >= greedy.Lookups {
			t.Fatalf("workers=%d: CELF lookups %d not below greedy %d", workers, lazy.Lookups, greedy.Lookups)
		}
	}
}

// TestSelectionGrowIsPrefixIncremental pins the growable contract: Grow
// never rewrites the committed prefix, growing to a covered k does no
// work, and the grown selection equals a one-shot run at the larger k.
func TestSelectionGrowIsPrefixIncremental(t *testing.T) {
	base := freshEngine(t, false)
	base.Compact()
	oneShot := celf.Run(base.Clone(), 20, celf.Options{Workers: 2})

	sel := celf.NewSelection(base.Clone(), celf.Options{Workers: 2})
	first := sel.Grow(8)
	if len(first.Seeds) != 8 || sel.Len() != 8 {
		t.Fatalf("Grow(8) committed %d seeds", sel.Len())
	}
	lookupsAfter8 := first.Lookups
	again := sel.Grow(5)
	if len(again.Seeds) != 8 || again.Lookups != lookupsAfter8 {
		t.Fatalf("Grow(5) after Grow(8) did work: %d seeds, %d lookups (had %d)",
			len(again.Seeds), again.Lookups, lookupsAfter8)
	}
	full := sel.Grow(20)
	requireSameSelection(t, "grow-vs-oneshot", oneShot, full)
	for i := 0; i < 8; i++ {
		if full.Seeds[i] != first.Seeds[i] || full.Gains[i] != first.Gains[i] {
			t.Fatalf("growth rewrote committed seed %d", i)
		}
	}
	if full.Lookups <= lookupsAfter8 {
		t.Fatalf("growth past the prefix reported no extra lookups")
	}
	// LookupsAt is per-seed cumulative and non-decreasing.
	if len(full.LookupsAt) != 20 {
		t.Fatalf("LookupsAt has %d entries, want 20", len(full.LookupsAt))
	}
	for i := 1; i < len(full.LookupsAt); i++ {
		if full.LookupsAt[i] < full.LookupsAt[i-1] {
			t.Fatalf("LookupsAt decreases at %d", i)
		}
	}
}

// TestResumeContinuationBitIdentical pins the restored-prefix path: a
// selection resumed from the first 7 seeds of a run and grown to 15
// produces the same seeds and gains as the continuous 15-seed run.
func TestResumeContinuationBitIdentical(t *testing.T) {
	base := freshEngine(t, false)
	base.Compact()
	continuous := celf.Run(base.Clone(), 15, celf.Options{Workers: 2})

	prefix := celf.Prefix{
		Seeds:     continuous.Seeds[:7],
		Gains:     continuous.Gains[:7],
		LookupsAt: continuous.LookupsAt[:7],
	}
	sel, err := celf.Resume(base.Clone(), prefix, celf.Options{Workers: 2})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if sel.Len() != 7 {
		t.Fatalf("resumed selection has %d seeds, want 7", sel.Len())
	}
	resumed := sel.Grow(15)
	requireSameSelection(t, "resume-vs-continuous", continuous, resumed)
}

// TestResumeRejectsBadPrefixes covers the validation of restored input.
func TestResumeRejectsBadPrefixes(t *testing.T) {
	mk := func() *core.Engine { e := freshEngine(t, true); e.Compact(); return e.Clone() }
	cases := map[string]celf.Prefix{
		"length mismatch":   {Seeds: []graph.NodeID{1, 2}, Gains: []float64{1}, LookupsAt: []int64{1, 2}},
		"out of range":      {Seeds: []graph.NodeID{100000}, Gains: []float64{1}, LookupsAt: []int64{1}},
		"negative id":       {Seeds: []graph.NodeID{-1}, Gains: []float64{1}, LookupsAt: []int64{1}},
		"duplicate seed":    {Seeds: []graph.NodeID{3, 3}, Gains: []float64{2, 1}, LookupsAt: []int64{1, 2}},
		"non-finite gain":   {Seeds: []graph.NodeID{3}, Gains: []float64{nan()}, LookupsAt: []int64{1}},
		"infinite gain too": {Seeds: []graph.NodeID{3}, Gains: []float64{inf()}, LookupsAt: []int64{1}},
	}
	for name, prefix := range cases {
		if _, err := celf.Resume(mk(), prefix, celf.Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// TestCandidatePoolRestriction pins CELFCandidates-style pools through
// the shared engine.
func TestCandidatePoolRestriction(t *testing.T) {
	base := freshEngine(t, true)
	base.Compact()
	pool := []graph.NodeID{5, 9, 17, 40, 77}
	res := celf.Run(base.Clone(), 3, celf.Options{Candidates: pool, Workers: 2})
	allowed := map[graph.NodeID]bool{}
	for _, x := range pool {
		allowed[x] = true
	}
	for _, s := range res.Seeds {
		if !allowed[s] {
			t.Fatalf("selected %d outside the candidate pool", s)
		}
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("selected %d seeds, want 3", len(res.Seeds))
	}
}

// TestExhaustion: a pool smaller than k runs dry and says so.
func TestExhaustion(t *testing.T) {
	base := freshEngine(t, true)
	base.Compact()
	sel := celf.NewSelection(base.Clone(), celf.Options{Candidates: []graph.NodeID{1, 2}})
	res := sel.Grow(10)
	if len(res.Seeds) != 2 || !sel.Exhausted() {
		t.Fatalf("Grow(10) over 2 candidates: %d seeds, exhausted=%v", len(res.Seeds), sel.Exhausted())
	}
	// Growing an exhausted selection is a no-op, not a rebuild.
	before := res.Lookups
	if after := sel.Grow(20); len(after.Seeds) != 2 || after.Lookups != before {
		t.Fatalf("Grow after exhaustion did work")
	}
}
