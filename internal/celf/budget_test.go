package celf_test

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"credist/internal/celf"
	"credist/internal/graph"
)

// coverEstimator is a tiny weighted-coverage estimator — monotone
// submodular with exactly computable optima — for brute-force
// cross-checks of the budgeted selection.
type coverEstimator struct {
	covers  [][]int   // node -> elements it covers
	vals    []float64 // element values
	covered []bool
}

func newCoverEstimator(covers [][]int, vals []float64) *coverEstimator {
	return &coverEstimator{covers: covers, vals: vals, covered: make([]bool, len(vals))}
}

func (c *coverEstimator) NumNodes() int { return len(c.covers) }

func (c *coverEstimator) Gain(x graph.NodeID) float64 {
	g := 0.0
	for _, e := range c.covers[x] {
		if !c.covered[e] {
			g += c.vals[e]
		}
	}
	return g
}

func (c *coverEstimator) Add(x graph.NodeID) {
	for _, e := range c.covers[x] {
		c.covered[e] = true
	}
}

// coverValue computes the exact objective of a node subset.
func coverValue(covers [][]int, vals []float64, set []int) float64 {
	seen := make(map[int]bool)
	total := 0.0
	for _, x := range set {
		for _, e := range covers[x] {
			if !seen[e] {
				seen[e] = true
				total += vals[e]
			}
		}
	}
	return total
}

// bruteBudgetOpt enumerates every subset within budget and returns the
// best achievable objective value.
func bruteBudgetOpt(covers [][]int, vals, costs []float64, budget float64) float64 {
	n := len(covers)
	best := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		cost := 0.0
		var set []int
		for x := 0; x < n; x++ {
			if mask&(1<<x) != 0 {
				cost += costs[x]
				set = append(set, x)
			}
		}
		if cost > budget {
			continue
		}
		if v := coverValue(covers, vals, set); v > best {
			best = v
		}
	}
	return best
}

// TestBudgetedBestOfBeatsRatioTrap pins the best-of rule on the classic
// adversarial instance: a cheap high-ratio node exhausts the budget's
// headroom so the expensive near-optimal node no longer fits. Plain
// cost-benefit greedy returns 2; best-of must return the singleton worth
// 10 — which is also the exhaustive optimum.
func TestBudgetedBestOfBeatsRatioTrap(t *testing.T) {
	covers := [][]int{{0}, {1}}
	vals := []float64{2, 10}
	costs := []float64{1, 10}
	res := celf.Run(newCoverEstimator(covers, vals), 5, celf.Options{Costs: costs, Budget: 10})
	if len(res.Seeds) != 1 || res.Seeds[0] != 1 {
		t.Fatalf("seeds = %v, want the singleton [1]", res.Seeds)
	}
	if res.Spread() != 10 {
		t.Fatalf("spread = %g, want 10", res.Spread())
	}
	if opt := bruteBudgetOpt(covers, vals, costs, 10); res.Spread() != opt {
		t.Fatalf("best-of %g, exhaustive optimum %g", res.Spread(), opt)
	}
}

// TestBudgetedGreedyApproximationOnRandomInstances cross-checks the
// budgeted selection against exhaustive enumeration on random weighted
// coverage instances: the best-of cost-benefit greedy must achieve at
// least (1 - 1/sqrt(e)) of the true optimum (Khuller–Moss–Naor), and
// never exceed it or the budget.
func TestBudgetedGreedyApproximationOnRandomInstances(t *testing.T) {
	const bound = 0.3934 // 1 - 1/sqrt(e), rounded down
	rng := rand.New(rand.NewPCG(23, 42))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.IntN(9)
		elems := 3 + rng.IntN(10)
		covers := make([][]int, n)
		for x := range covers {
			deg := 1 + rng.IntN(3)
			picked := make(map[int]bool)
			for d := 0; d < deg; d++ {
				e := rng.IntN(elems)
				if !picked[e] {
					picked[e] = true
					covers[x] = append(covers[x], e)
				}
			}
		}
		vals := make([]float64, elems)
		for e := range vals {
			vals[e] = 0.5 + rng.Float64()*4
		}
		costs := make([]float64, n)
		total := 0.0
		for x := range costs {
			costs[x] = 0.5 + rng.Float64()*2.5
			total += costs[x]
		}
		budget := 0.5 + rng.Float64()*total

		res := celf.Run(newCoverEstimator(covers, vals), n, celf.Options{Costs: costs, Budget: budget})
		spent := 0.0
		for _, s := range res.Seeds {
			spent += costs[s]
		}
		if spent > budget {
			t.Fatalf("trial %d: selection spends %g over budget %g (seeds %v)", trial, spent, budget, res.Seeds)
		}
		got := coverValue(covers, vals, toInts(res.Seeds))
		if math.Abs(got-res.Spread()) > 1e-9 {
			t.Fatalf("trial %d: recorded spread %g, recomputed %g", trial, res.Spread(), got)
		}
		opt := bruteBudgetOpt(covers, vals, costs, budget)
		if got > opt+1e-9 {
			t.Fatalf("trial %d: greedy %g beats the exhaustive optimum %g", trial, got, opt)
		}
		if got < bound*opt-1e-9 {
			t.Fatalf("trial %d: greedy %g below the (1-1/sqrt(e)) bound of optimum %g", trial, got, opt)
		}
	}
}

func toInts(seeds []graph.NodeID) []int {
	out := make([]int, len(seeds))
	for i, s := range seeds {
		out[i] = int(s)
	}
	return out
}

// TestUnitCostsBitIdenticalToDefault pins the tentpole's determinism
// wall on the celf layer: explicit all-ones costs with no budget order
// the heap by gain/1, which must reproduce the classic selection bit for
// bit — seeds, gains, and prefix spreads — on the real CD engine.
func TestUnitCostsBitIdenticalToDefault(t *testing.T) {
	base := freshEngine(t, true)
	base.Compact()
	classic := celf.Run(base.Clone(), 15, celf.Options{})
	unit := make([]float64, base.NumNodes())
	for i := range unit {
		unit[i] = 1
	}
	costed := celf.Run(base.Clone(), 15, celf.Options{Costs: unit})
	requireSameSelection(t, "unit costs", classic, costed)
}

// TestBudgetAsSeedCountCap pins that a budget over unit costs is a seed
// count cap, and that the budgeted prefix is exactly the unbudgeted
// selection's prefix.
func TestBudgetAsSeedCountCap(t *testing.T) {
	base := freshEngine(t, true)
	base.Compact()
	free := celf.Run(base.Clone(), 10, celf.Options{})
	capped := celf.Run(base.Clone(), 10, celf.Options{Budget: 3})
	if len(capped.Seeds) != 3 {
		t.Fatalf("budget 3 over unit costs selected %d seeds", len(capped.Seeds))
	}
	for i := range capped.Seeds {
		if capped.Seeds[i] != free.Seeds[i] || capped.Gains[i] != free.Gains[i] {
			t.Fatalf("budgeted prefix diverged at %d: (%d, %b) vs (%d, %b)",
				i, capped.Seeds[i], capped.Gains[i], free.Seeds[i], free.Gains[i])
		}
	}
}

// TestBlockedNodesNeverSelected pins the blocked-set contract on the CD
// engine: the rival's committed seeds are committed to the estimator
// (gains become marginal over the rival set) and never reappear in the
// selection, at any worker count, bit-identically.
func TestBlockedNodesNeverSelected(t *testing.T) {
	base := freshEngine(t, true)
	base.Compact()
	rival := celf.Run(base.Clone(), 3, celf.Options{}).Seeds

	runBlocked := func(workers int) celf.Result {
		eng := base.Clone()
		for _, x := range rival {
			eng.Add(x)
		}
		return celf.Run(eng, 8, celf.Options{Workers: workers, Blocked: rival})
	}
	serial := runBlocked(1)
	if len(serial.Seeds) != 8 {
		t.Fatalf("blocked run selected %d seeds, want 8", len(serial.Seeds))
	}
	blocked := make(map[graph.NodeID]bool, len(rival))
	for _, x := range rival {
		blocked[x] = true
	}
	for _, s := range serial.Seeds {
		if blocked[s] {
			t.Fatalf("blocked node %d was selected", s)
		}
	}
	parallel := runBlocked(runtime.GOMAXPROCS(0))
	requireSameSelection(t, "blocked", serial, parallel)
}

// TestBudgetedSelectionDeterministicAcrossWorkers pins the extended
// determinism wall: a costed, budgeted selection on the CD engine is
// bit-identical at any worker count.
func TestBudgetedSelectionDeterministicAcrossWorkers(t *testing.T) {
	base := freshEngine(t, true)
	base.Compact()
	costs := make([]float64, base.NumNodes())
	rng := rand.New(rand.NewPCG(9, 77))
	for i := range costs {
		costs[i] = 0.5 + rng.Float64()*3
	}
	opts := func(workers int) celf.Options {
		return celf.Options{Workers: workers, Costs: costs, Budget: 12}
	}
	serial := celf.Run(base.Clone(), 30, opts(1))
	if len(serial.Seeds) == 0 {
		t.Fatal("budgeted run selected nothing")
	}
	spent := 0.0
	for _, s := range serial.Seeds {
		spent += costs[s]
	}
	if spent > 12 {
		t.Fatalf("selection spends %g over budget 12", spent)
	}
	for _, workers := range []int{runtime.GOMAXPROCS(0), 4, 13} {
		parallel := celf.Run(base.Clone(), 30, opts(workers))
		requireSameSelection(t, "budgeted", serial, parallel)
	}
}
