// Package celf is the shared seed-selection engine: lazy-forward greedy
// (CELF, Leskovec et al. — Algorithm 3 of the paper) with a parallel
// first-iteration marginal-gain pass, deterministic tie-breaking, and
// prefix-incremental results.
//
// Every seed-selection path in the repository — internal/seedsel's
// estimator-generic selectors, the credist.Model/Planner facade, serve's
// /seeds endpoint, cmd/experiments' figure drivers, and the RIS baseline —
// routes through this one implementation, so their selections agree bit
// for bit by construction instead of by parallel maintenance of two heaps.
//
// Determinism contract: Seeds and Gains (hence every per-prefix spread,
// the cumulative sum of Gains) are bit-for-bit identical across worker
// counts, runs, and process restarts, because each marginal gain is an
// independent evaluation against a fixed seed set (workers only schedule
// them) and every heap operation follows the total order (gain desc,
// node asc). Lookups/LookupsAt count actual Gain evaluations and may grow
// slightly with Workers: a stale run at the top of the queue is refreshed
// up to Workers entries at a time, and the speculative extras are wasted
// only when the first refresh alone would have surfaced a fresh top.
// Refreshing extra stale entries can never change which node is selected:
// refreshed gains are exact values under the current seed set, and by
// submodularity every stale cached gain is an upper bound, so the fresh
// maximum wins the pop order regardless of how many bounds were tightened
// early. With Workers: 1 the algorithm is exactly the classic serial CELF
// — one stale refresh per heap inspection, no speculation.
//
// Prefix-incremental contract: a Selection never recomputes a committed
// prefix. Grow(k) extends the selection to k seeds, keeping the heap of
// cached bounds across calls, so after Grow(50) the answer for every
// k <= 50 is a slice of the recorded arrays and Grow(60) pays only the
// marginal work. Resume rebuilds a Selection from a previously computed
// prefix (e.g. one restored from a binary model snapshot): the prefix
// seeds are committed via Add without any Gain evaluations, and the first
// growth past the prefix pays one fresh full pass to rebuild the heap.
// Seeds and Gains of a resumed selection are bit-identical to a
// continuous run; Lookups differ (the rebuild pass replaces the retained
// bounds a continuous run would have reused).
package celf

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"credist/internal/graph"
)

// Estimator is the marginal-gain oracle greedy needs. Implementations
// carry the current seed set as internal state: Gain must be side-effect
// free, Add commits a seed.
type Estimator interface {
	// NumNodes returns the candidate universe size (node ids 0..n-1).
	NumNodes() int
	// Gain returns sigma(S+x) - sigma(S) for the current seed set S.
	Gain(x graph.NodeID) float64
	// Add commits x to the seed set.
	Add(x graph.NodeID)
}

// ConcurrentEstimator marks an Estimator whose Gain is safe to call from
// many goroutines at once between Adds (i.e. Gain reads only state that
// Add-free execution leaves untouched). Only estimators carrying this
// marker are fanned over workers; anything else runs serially no matter
// what Options.Workers says, so a stateful Monte-Carlo or cached
// heuristic estimator can never be raced by accident.
type ConcurrentEstimator interface {
	Estimator
	// ConcurrentGain is a compile-time marker; it is never called.
	ConcurrentGain()
}

// Options configures a selection run.
type Options struct {
	// Workers bounds the gain-evaluation fan-out. 0 means GOMAXPROCS.
	// Ignored (forced to 1) unless the estimator implements
	// ConcurrentEstimator.
	Workers int
	// Candidates restricts the selection to a candidate pool; nil means
	// every node in [0, NumNodes()).
	Candidates []graph.NodeID
	// Costs assigns a positive selection cost to every node (indexed by
	// id, covering the universe); nil means unit costs, which keeps the
	// selection bit-identical to classic gain-ordered CELF. With costs
	// set, the lazy-forward heap orders candidates by gain per unit cost
	// (cost-benefit greedy). Lazy forwarding stays valid: a cached ratio
	// is a stale gain over a fixed cost, hence an upper bound by
	// submodularity, exactly as in the unit-cost case.
	Costs []float64
	// Budget caps the summed cost of the selected seeds; 0 means
	// unlimited. A candidate whose cost exceeds the remaining budget is
	// dropped permanently when it surfaces — the remaining budget only
	// ever shrinks, so it can never become affordable later. With nil
	// Costs every seed costs 1, making Budget a seed-count cap.
	Budget float64
	// Blocked removes nodes from the candidate pool — a rival's committed
	// seed set. Callers that want marginal gains measured against the
	// rival's set commit the blocked nodes to the estimator before
	// selecting; Blocked then keeps them from being picked again.
	Blocked []graph.NodeID
}

// Result reports a selection prefix.
type Result struct {
	// Seeds in selection order.
	Seeds []graph.NodeID
	// Gains[i] is the marginal gain of Seeds[i] when it was selected; the
	// cumulative sum is the (estimated) spread of each prefix.
	Gains []float64
	// Lookups counts Gain evaluations over the whole run so far, the
	// paper's measure of how much work CELF saves over plain greedy.
	Lookups int
	// LookupsAt[i] is the cumulative Gain-evaluation count at the moment
	// Seeds[i] was committed, so any prefix of the selection can report
	// the work that produced it.
	LookupsAt []int64
	// Elapsed[i] is the wall time spent selecting (summed over Grow
	// calls) until Seeds[i] was committed — the series behind the paper's
	// running-time figure. Zero for seeds adopted from a resumed prefix.
	Elapsed []time.Duration
}

// Spread returns the estimated spread of the full seed set (sum of gains).
func (r Result) Spread() float64 {
	total := 0.0
	for _, g := range r.Gains {
		total += g
	}
	return total
}

// Prefix is a previously computed selection prefix — seeds in selection
// order, their marginal gains, and the cumulative gain-evaluation count
// when each was committed. It is the one prefix representation shared by
// the whole repository: persisted in binary model snapshots (the facade
// and core alias it), and used to Resume a Selection without
// recomputing.
type Prefix struct {
	Seeds     []graph.NodeID
	Gains     []float64
	LookupsAt []int64
}

// Validate enforces the structural rules every prefix consumer relies on
// (and the snapshot writer mirrors, so it can never produce a file every
// load refuses): equal-length arrays, unique in-range seeds, finite
// gains, and non-decreasing lookup counts.
func (p *Prefix) Validate(numUsers int) error {
	if len(p.Seeds) != len(p.Gains) || len(p.Seeds) != len(p.LookupsAt) {
		return fmt.Errorf("celf: prefix arrays disagree: %d seeds, %d gains, %d lookup counts",
			len(p.Seeds), len(p.Gains), len(p.LookupsAt))
	}
	seen := make(map[graph.NodeID]struct{}, len(p.Seeds))
	prev := int64(0)
	for i, x := range p.Seeds {
		if x < 0 || int(x) >= numUsers {
			return fmt.Errorf("celf: prefix seed %d out of range [0,%d)", x, numUsers)
		}
		if _, dup := seen[x]; dup {
			return fmt.Errorf("celf: prefix seed %d committed twice", x)
		}
		seen[x] = struct{}{}
		if g := p.Gains[i]; math.IsNaN(g) || math.IsInf(g, 0) {
			return fmt.Errorf("celf: prefix gain %g at %d is not finite", g, i)
		}
		if l := p.LookupsAt[i]; l < prev {
			return fmt.Errorf("celf: prefix lookup counts decrease at %d (%d after %d)", i, l, prev)
		} else {
			prev = l
		}
	}
	return nil
}

// entry is a lazily evaluated candidate: gain was computed when the seed
// set had size round. key is the heap-ordering value — the gain itself
// under unit costs, gain/cost under per-node costs — kept alongside the
// raw gain so the recorded Gains stay marginal spreads either way.
type entry struct {
	node  graph.NodeID
	gain  float64
	key   float64
	round int
}

// gainHeap orders entries by (key desc, node asc) — the deterministic
// tie-break every selection path shares. Under unit costs key equals
// gain, so the order is the classic (gain desc, node asc).
type gainHeap []entry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key > h[j].key
	}
	return h[i].node < h[j].node
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Selection is a growable, prefix-incremental CELF run over one
// estimator. It is not safe for concurrent use; callers that share one
// Selection (the serving layer) serialize Grow externally and answer
// prefix reads from their own published copies.
type Selection struct {
	est        Estimator
	workers    int
	candidates []graph.NodeID // nil = all nodes
	costs      []float64      // nil = unit costs
	budget     float64        // 0 = unlimited
	blocked    map[graph.NodeID]struct{}

	h     gainHeap
	built bool

	seeds     []graph.NodeID
	gains     []float64
	lookupsAt []int64
	elapsed   []time.Duration
	lookups   int64
	spent     time.Duration
	spentCost float64

	// single is the best affordable singleton seen during the budgeted
	// first-iteration pass (gain desc, node asc); Run's best-of rule
	// compares it against the greedy set. node -1 means none.
	single entry

	batch []entry // scratch for stale-run refreshes
}

// NewSelection returns an empty selection over the estimator. Costs, when
// set, must be positive, finite, and cover the universe — the facade and
// serving layers validate user input before it reaches here.
func NewSelection(est Estimator, opts Options) *Selection {
	s := &Selection{
		est:        est,
		workers:    resolveWorkers(est, opts.Workers),
		candidates: opts.Candidates,
		costs:      opts.Costs,
		budget:     opts.Budget,
		single:     entry{node: -1, gain: math.Inf(-1)},
	}
	if len(opts.Blocked) > 0 {
		s.blocked = make(map[graph.NodeID]struct{}, len(opts.Blocked))
		for _, x := range opts.Blocked {
			s.blocked[x] = struct{}{}
		}
	}
	return s
}

// costOf returns x's selection cost (1 under unit costs).
func (s *Selection) costOf(x graph.NodeID) float64 {
	if s.costs == nil {
		return 1
	}
	return s.costs[x]
}

// keyOf returns the heap-ordering value for a candidate with the given
// gain: the gain itself under unit costs, gain per unit cost otherwise.
func (s *Selection) keyOf(x graph.NodeID, gain float64) float64 {
	if s.costs == nil {
		return gain
	}
	return gain / s.costs[x]
}

// affordable reports whether x fits in the remaining budget.
func (s *Selection) affordable(x graph.NodeID) bool {
	return s.budget <= 0 || s.spentCost+s.costOf(x) <= s.budget
}

// Resume rebuilds a selection from a previously computed prefix: the
// prefix seeds are committed to the estimator via Add (no Gain
// evaluations), and the recorded gains and lookup counts are adopted as
// the selection's own. The estimator must be fresh (no committed seeds).
// Growing past the prefix is bit-identical in Seeds and Gains to a
// continuous run that was stopped at the prefix length.
func Resume(est Estimator, prefix Prefix, opts Options) (*Selection, error) {
	if err := prefix.Validate(est.NumNodes()); err != nil {
		return nil, err
	}
	s := NewSelection(est, opts)
	for _, x := range prefix.Seeds {
		est.Add(x)
	}
	s.seeds = slices.Clone(prefix.Seeds)
	s.gains = slices.Clone(prefix.Gains)
	s.lookupsAt = slices.Clone(prefix.LookupsAt)
	s.elapsed = make([]time.Duration, len(prefix.Seeds))
	if n := len(prefix.LookupsAt); n > 0 {
		s.lookups = prefix.LookupsAt[n-1]
	}
	return s, nil
}

// Run selects up to k seeds in one shot: NewSelection + Grow. Under a
// budget it additionally applies the best-of rule: plain cost-benefit
// greedy has no approximation guarantee, but the better of the greedy set
// and the best affordable singleton achieves the (1 - 1/sqrt(e)) bound
// (Khuller, Moss, Naor — the budgeted-max-coverage argument, which
// carries over to any monotone submodular objective). When the singleton
// wins, the estimator's committed state still reflects the greedy path;
// budgeted runs are one-shot, so callers hand in a clone.
func Run(est Estimator, k int, opts Options) Result {
	s := NewSelection(est, opts)
	res := s.Grow(k)
	if s.budget > 0 && s.single.node >= 0 && s.single.gain > res.Spread() {
		return Result{
			Seeds:     []graph.NodeID{s.single.node},
			Gains:     []float64{s.single.gain},
			Lookups:   int(s.lookups),
			LookupsAt: []int64{s.lookups},
			Elapsed:   []time.Duration{s.spent},
		}
	}
	return res
}

// Len returns the number of committed seeds.
func (s *Selection) Len() int { return len(s.seeds) }

// Exhausted reports whether the candidate pool ran dry: no further Grow
// can add seeds.
func (s *Selection) Exhausted() bool { return s.built && s.h.Len() == 0 }

// Grow extends the selection to at most k seeds and returns the full
// accumulated result (an independent copy; slicing it to any length <=
// Len() yields that prefix's selection). Growing to a k at or below the
// current length does no work.
func (s *Selection) Grow(k int) Result {
	if k <= len(s.seeds) || s.Exhausted() {
		return s.result()
	}
	start := time.Now()
	if !s.built {
		s.buildHeap()
	}
	round := len(s.seeds)
	for len(s.seeds) < k && s.h.Len() > 0 {
		if s.budget > 0 && !s.affordable(s.h[0].node) {
			// Over the remaining budget, which only ever shrinks: drop it
			// for good, fresh or stale (affordability ignores the gain).
			heap.Pop(&s.h)
			continue
		}
		if s.h[0].round == round {
			// Fresh: by submodularity nothing below can beat it.
			top := heap.Pop(&s.h).(entry)
			s.est.Add(top.node)
			s.spentCost += s.costOf(top.node)
			s.seeds = append(s.seeds, top.node)
			s.gains = append(s.gains, top.gain)
			s.lookupsAt = append(s.lookupsAt, s.lookups)
			s.elapsed = append(s.elapsed, s.spent+time.Since(start))
			round++
			continue
		}
		// Stale run at the top: refresh up to Workers entries against the
		// current seed set in parallel and reinsert them. The run is popped
		// in heap order and reinserted in that same order, so the heap
		// layout — and therefore the selection — is deterministic.
		batch := s.batch[:0]
		for len(batch) < s.workers && s.h.Len() > 0 && s.h[0].round != round {
			e := heap.Pop(&s.h).(entry)
			if s.budget > 0 && !s.affordable(e.node) {
				continue // drop without paying a refresh
			}
			batch = append(batch, e)
		}
		s.forEach(len(batch), func(i int) {
			batch[i].gain = s.est.Gain(batch[i].node)
			batch[i].key = s.keyOf(batch[i].node, batch[i].gain)
			batch[i].round = round
		})
		s.lookups += int64(len(batch))
		for _, e := range batch {
			heap.Push(&s.h, e)
		}
		s.batch = batch
	}
	s.spent += time.Since(start)
	return s.result()
}

// buildHeap runs the first-iteration marginal-gain pass: every candidate
// outside the committed seed set is evaluated (fanned over the workers,
// written by index so scheduling cannot reorder anything) and the heap is
// initialized from the candidate-ordered slice.
func (s *Selection) buildHeap() {
	var pool []graph.NodeID
	if s.candidates != nil {
		pool = s.candidates
	} else {
		pool = make([]graph.NodeID, s.est.NumNodes())
		for i := range pool {
			pool[i] = graph.NodeID(i)
		}
	}
	if len(s.seeds) > 0 || len(s.blocked) > 0 {
		excluded := make(map[graph.NodeID]struct{}, len(s.seeds)+len(s.blocked))
		for _, x := range s.seeds {
			excluded[x] = struct{}{}
		}
		for x := range s.blocked {
			excluded[x] = struct{}{}
		}
		// The caller's Candidates slice is never mutated and, when no
		// committed or blocked seed appears in it, never copied either —
		// long-lived pools (the RIS tier hands its covered-node index
		// straight in, on every selection) stay zero-allocation here.
		overlap := 0
		for _, x := range pool {
			if _, in := excluded[x]; in {
				overlap++
			}
		}
		if overlap > 0 {
			filtered := make([]graph.NodeID, 0, len(pool)-overlap)
			for _, x := range pool {
				if _, in := excluded[x]; !in {
					filtered = append(filtered, x)
				}
			}
			pool = filtered
		}
	}
	round := len(s.seeds)
	ents := make(gainHeap, len(pool))
	s.forEach(len(pool), func(i int) {
		g := s.est.Gain(pool[i])
		ents[i] = entry{node: pool[i], gain: g, key: s.keyOf(pool[i], g), round: round}
	})
	s.lookups += int64(len(pool))
	if s.budget > 0 {
		// Track the best affordable singleton (gain desc, node asc) for
		// Run's best-of rule — serially, after the parallel pass, so the
		// choice cannot depend on worker scheduling.
		for _, e := range ents {
			if s.costOf(e.node) > s.budget {
				continue
			}
			if e.gain > s.single.gain || (e.gain == s.single.gain && e.node < s.single.node) {
				s.single = e
			}
		}
	}
	heap.Init(&ents)
	s.h = ents
	s.built = true
}

// result snapshots the accumulated selection into an independent Result.
func (s *Selection) result() Result {
	return Result{
		Seeds:     slices.Clone(s.seeds),
		Gains:     slices.Clone(s.gains),
		Lookups:   int(s.lookups),
		LookupsAt: slices.Clone(s.lookupsAt),
		Elapsed:   slices.Clone(s.elapsed),
	}
}

// forEach runs fn(0..n-1) over up to s.workers goroutines, written by
// index; with one worker it is a plain loop.
func (s *Selection) forEach(n int, fn func(i int)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// resolveWorkers applies the safety rule: only marked-concurrent
// estimators are fanned out at all.
func resolveWorkers(est Estimator, workers int) int {
	if _, ok := est.(ConcurrentEstimator); !ok {
		return 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}
