//go:build race

package celf_test

// raceEnabled lets the wall-clock speedup assertion self-skip under the
// race detector, whose instrumentation distorts timing; the correctness
// gate (`go test -race ./...`) must never fail on performance noise.
const raceEnabled = true
