package celf

import (
	"fmt"
	"sort"
	"sync"

	"credist/internal/graph"
)

// This file is the coordinator-side view of engines split by
// influencer-row range: a PartitionedEstimator makes a contiguous set of
// partitions look like one Estimator, so the lazy-forward heap, the
// parallel first-iteration pass, Resume, and the prefix-incremental
// machinery of Selection all work over partitions unchanged. Gain routes
// to the partition owning the candidate's row (where it is exact, not a
// partial sum); Add extracts the committed seed's row from its owner and
// broadcasts the commit to every partition. Because each partition
// returns the same bits the unpartitioned engine would and the heap logic
// is shared, seeds, gains, and spreads are bit-identical at any partition
// count.

// Partition is one row-range partition of an additive credit structure,
// as seen by the coordinator. credist's core.Engine implements it; the
// indirection (and the opaque seed-row payload) keeps celf free of the
// engine's cell types.
type Partition interface {
	// PartitionRange returns the influencer-row range [lo, hi) this
	// partition owns.
	PartitionRange() (lo, hi int)
	// Gain returns the exact marginal gain of x under the current seed
	// set. Only valid when this partition owns x's row; must be safe for
	// concurrent calls between commits.
	Gain(x graph.NodeID) float64
	// ExtractSeedRow reads out x's credit rows as an opaque payload for
	// CommitSeedRow. Only valid on the partition owning x.
	ExtractSeedRow(x graph.NodeID) any
	// CommitSeedRow commits x given the owning partition's payload.
	CommitSeedRow(x graph.NodeID, payload any)
}

// PartitionedEstimator is a ConcurrentEstimator over a contiguous set of
// row-range partitions. It carries the seed set across the partitions
// (every commit is broadcast), so one estimator backs one Selection, like
// any other stateful estimator.
type PartitionedEstimator struct {
	parts   []Partition
	his     []int // parts[i] owns rows [his[i-1], his[i])
	nodes   int
	workers int // commit-broadcast fan-out; 1 = serial
}

// NewPartitionedEstimator validates that the partitions tile [0, nodes)
// contiguously (sorted by range start, no overlap, no gap) and returns
// the estimator. workers bounds the commit-broadcast fan-out; 0 or 1
// broadcasts serially — the per-partition commits touch disjoint state,
// so the result is bit-identical either way.
func NewPartitionedEstimator(parts []Partition, workers int) (*PartitionedEstimator, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("celf: no partitions")
	}
	sorted := make([]Partition, len(parts))
	copy(sorted, parts)
	sort.SliceStable(sorted, func(i, j int) bool {
		li, _ := sorted[i].PartitionRange()
		lj, _ := sorted[j].PartitionRange()
		return li < lj
	})
	pe := &PartitionedEstimator{parts: sorted, his: make([]int, len(sorted)), workers: workers}
	cur := 0
	for i, p := range sorted {
		lo, hi := p.PartitionRange()
		if lo > hi {
			return nil, fmt.Errorf("celf: partition %d has inverted rows [%d,%d)", i, lo, hi)
		}
		if lo < cur {
			prevLo, _ := sorted[i-1].PartitionRange()
			return nil, fmt.Errorf("celf: partition rows [%d,%d) overlap [%d,%d)", lo, hi, prevLo, cur)
		}
		if lo > cur {
			return nil, fmt.Errorf("celf: gap in partition rows: [%d,%d) is not covered before [%d,%d)", cur, lo, lo, hi)
		}
		cur = hi
		pe.his[i] = hi
	}
	pe.nodes = cur
	return pe, nil
}

// NumNodes returns the tiled universe size.
func (pe *PartitionedEstimator) NumNodes() int { return pe.nodes }

// Owner returns the partition holding x's row.
func (pe *PartitionedEstimator) Owner(x graph.NodeID) Partition {
	i := sort.SearchInts(pe.his, int(x)+1)
	if i >= len(pe.parts) {
		panic(fmt.Sprintf("celf: node %d outside the partitioned universe [0,%d)", x, pe.nodes))
	}
	return pe.parts[i]
}

// Gain routes to the owner partition, where the marginal gain is exact.
func (pe *PartitionedEstimator) Gain(x graph.NodeID) float64 {
	return pe.Owner(x).Gain(x)
}

// Add commits x everywhere: the owner extracts x's credit rows once, and
// every partition applies the commit — in parallel across partitions when
// workers allow, identically either way since the per-partition updates
// are disjoint.
func (pe *PartitionedEstimator) Add(x graph.NodeID) {
	payload := pe.Owner(x).ExtractSeedRow(x)
	if pe.workers <= 1 || len(pe.parts) == 1 {
		for _, p := range pe.parts {
			p.CommitSeedRow(x, payload)
		}
		return
	}
	var wg sync.WaitGroup
	for _, p := range pe.parts {
		wg.Add(1)
		go func(p Partition) {
			defer wg.Done()
			p.CommitSeedRow(x, payload)
		}(p)
	}
	wg.Wait()
}

// ConcurrentGain marks Gain as safe for concurrent calls between Adds —
// it routes to partition Gains that are themselves read-only — enabling
// the parallel first-iteration pass. Compile-time marker, never called.
func (pe *PartitionedEstimator) ConcurrentGain() {}
