package celf

import (
	"strings"
	"sync/atomic"
	"testing"

	"credist/internal/graph"
)

// fakePart is a toy additive partition: node x in [lo, hi) has gain
// weight[x] until committed, and commits are counted on every partition
// (the broadcast contract).
type fakePart struct {
	lo, hi    int
	weight    []float64 // indexed globally; owner reads only its range
	committed map[graph.NodeID]bool
	commits   atomic.Int64
}

func (f *fakePart) PartitionRange() (int, int) { return f.lo, f.hi }
func (f *fakePart) Gain(x graph.NodeID) float64 {
	if int(x) < f.lo || int(x) >= f.hi {
		panic("routed to the wrong partition")
	}
	if f.committed[x] {
		return 0
	}
	return f.weight[x]
}
func (f *fakePart) ExtractSeedRow(x graph.NodeID) any {
	if int(x) < f.lo || int(x) >= f.hi {
		panic("extract on the wrong partition")
	}
	return x
}
func (f *fakePart) CommitSeedRow(x graph.NodeID, payload any) {
	if payload.(graph.NodeID) != x {
		panic("payload mismatch")
	}
	if f.committed == nil {
		f.committed = make(map[graph.NodeID]bool)
	}
	f.committed[x] = true
	f.commits.Add(1)
}

func tile(weights []float64, bounds ...int) []Partition {
	var parts []Partition
	for i := 1; i < len(bounds); i++ {
		parts = append(parts, &fakePart{lo: bounds[i-1], hi: bounds[i], weight: weights})
	}
	return parts
}

func TestPartitionedEstimatorRoutingAndBroadcast(t *testing.T) {
	weights := []float64{5, 1, 9, 2, 8, 3, 7, 4, 6, 0}
	for _, workers := range []int{1, 4} {
		parts := tile(weights, 0, 3, 7, 10)
		pe, err := NewPartitionedEstimator(parts, workers)
		if err != nil {
			t.Fatalf("NewPartitionedEstimator: %v", err)
		}
		if pe.NumNodes() != 10 {
			t.Fatalf("NumNodes = %d", pe.NumNodes())
		}
		for x, w := range weights {
			if got := pe.Gain(graph.NodeID(x)); got != w {
				t.Fatalf("Gain(%d) = %g, want %g", x, got, w)
			}
		}
		pe.Add(4)
		for _, p := range parts {
			fp := p.(*fakePart)
			if fp.commits.Load() != 1 {
				t.Fatalf("workers=%d: partition [%d,%d) saw %d commits, want 1", workers, fp.lo, fp.hi, fp.commits.Load())
			}
		}
		if got := pe.Gain(4); got != 0 {
			t.Fatalf("committed Gain(4) = %g", got)
		}

		// The estimator drives the stock CELF machinery: greedy order by
		// weight, first-iteration pass fanned over workers.
		res := NewSelection(pe, Options{Workers: workers}).Grow(3)
		want := []graph.NodeID{2, 6, 8} // weights 9, 7, 6 (4 is committed)
		for i, s := range want {
			if res.Seeds[i] != s {
				t.Fatalf("workers=%d: seed %d = %d, want %d", workers, i, res.Seeds[i], s)
			}
		}
	}
}

func TestPartitionedEstimatorValidation(t *testing.T) {
	weights := make([]float64, 10)
	cases := []struct {
		name   string
		parts  []Partition
		want   string
		bounds []int
	}{
		{name: "empty", parts: nil, want: "no partitions"},
		{name: "gap", parts: tile(weights, 0, 3, 3, 10)[0:1:1], want: "gap"},
		{name: "overlap", parts: append(tile(weights, 0, 6), tile(weights, 4, 10)...), want: "overlap"},
	}
	// "gap" above needs a hole in the middle: [0,3) then [5,10).
	cases[1].parts = []Partition{
		&fakePart{lo: 0, hi: 3, weight: weights},
		&fakePart{lo: 5, hi: 10, weight: weights},
	}
	for _, c := range cases {
		if _, err := NewPartitionedEstimator(c.parts, 1); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	// A cover not starting at 0 is a gap before the first range.
	if _, err := NewPartitionedEstimator([]Partition{&fakePart{lo: 2, hi: 10, weight: weights}}, 1); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("missing head: %v", err)
	}
	// NumNodes comes from the cover's end; there is no external universe
	// to compare against, so a short cover is simply a smaller universe.
	pe, err := NewPartitionedEstimator(tile(weights, 0, 4), 1)
	if err != nil {
		t.Fatalf("short cover rejected: %v", err)
	}
	if pe.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", pe.NumNodes())
	}
}
