package credist_test

import (
	"fmt"

	"credist"
	"credist/internal/datagen"
)

// demoConfig is a tiny deterministic dataset used by the runnable
// documentation examples below.
func demoConfig() datagen.Config {
	return datagen.Config{
		Name: "demo", NumUsers: 200, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 120, MeanInfluence: 0.1, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 99,
	}
}

// The basic workflow: synthesize (or load) a dataset, learn the credit
// distribution model from its traces, and select influential seeds.
func ExampleLearn() {
	ds := credist.Generate(demoConfig())
	model := credist.Learn(ds, credist.Options{Lambda: 0.001})
	seeds, _ := model.SelectSeeds(3)
	fmt.Println(len(seeds))
	// Output: 3
}

// Spread prediction needs no simulation: the model evaluates sigma_cd
// directly from the scanned propagation traces.
func ExampleModel_Spread() {
	ds := credist.Generate(demoConfig())
	model := credist.Learn(ds, credist.Options{})
	seeds, gains := model.SelectSeeds(2)
	sum := 0.0
	for _, g := range gains {
		sum += g
	}
	// The exact spread matches the engine's accumulated marginal gains
	// (no truncation configured here).
	fmt.Printf("%.3f\n", model.Spread(seeds)-sum)
	// Output: 0.000
}

// SelectSeeds runs the paper's seed-selection algorithm (Scan + CELF
// greedy): seeds come back in selection order and, by submodularity,
// their marginal gains never increase.
func ExampleModel_SelectSeeds() {
	ds := credist.Generate(demoConfig())
	model := credist.Learn(ds, credist.Options{Lambda: 0.001})
	seeds, gains := model.SelectSeeds(5)
	nonIncreasing := true
	for i := 1; i < len(gains); i++ {
		if gains[i] > gains[i-1] {
			nonIncreasing = false
		}
	}
	fmt.Println(len(seeds), nonIncreasing)
	// Output: 5 true
}

// A Planner exposes the engine behind SelectSeeds for incremental use:
// commit seeds one at a time, read marginal gains between commits, and
// Clone to branch what-if explorations without rescanning the log. This is
// the hook the serving layer (internal/serve) builds snapshots on.
func ExampleModel_NewPlanner() {
	ds := credist.Generate(demoConfig())
	model := credist.Learn(ds, credist.Options{})

	planner := model.NewPlanner()
	branch := planner.Clone()
	res := branch.Select(3) // mutates only the clone

	offline, _ := model.SelectSeeds(3)
	fmt.Println("clone matches SelectSeeds:", res.Seeds[0] == offline[0])
	fmt.Println("original planner untouched:", len(planner.Seeds()))
	// Output:
	// clone matches SelectSeeds: true
	// original planner untouched: 0
}

// The paper's protocol holds out test propagations: split the log
// 80/20 with the size-stratified rule and learn on the training part.
func ExampleDataset_Split() {
	ds := credist.Generate(demoConfig())
	train, test := ds.Split()
	fmt.Println(train.Stats().NumActions, test.Stats().NumActions)
	// Output: 96 24
}

// Initiators extracts the seed set of one propagation: the users who
// performed the action before any of their neighbors.
func ExampleInitiators() {
	ds := credist.Generate(demoConfig())
	inits := credist.Initiators(ds, 0)
	fmt.Println(len(inits) > 0)
	// Output: true
}
