package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"credist"
)

// runLearn is the `credist learn` subcommand: fit the CD model to a
// dataset, run the one-time log scan, and persist everything as a binary
// snapshot so later processes (`credist serve -model`, credist.LoadModel)
// cold-start without relearning or rescanning.
func runLearn(args []string) {
	fs := flag.NewFlagSet("credist learn", flag.ExitOnError)
	var (
		preset    = fs.String("preset", "", "learn from a built-in dataset; one of: "+presetList())
		graphPath = fs.String("graph", "", "graph edge-list file (as written by datagen); requires -log")
		logPath   = fs.String("log", "", "action log file (as written by datagen); requires -graph")
		out       = fs.String("o", "", "output path for the binary model snapshot (required)")
		lambda    = fs.Float64("lambda", 0.001, "CD truncation threshold (paper default 0.001; 0 keeps every credit)")
		simple    = fs.Bool("simple-credit", false, "use the equal-split 1/d_in direct-credit rule instead of the learned time-aware rule (Eq. 9)")
		seedK     = fs.Int("seed-k", 0, "also run CELF for this many seeds and persist the selection prefix in the snapshot, so `credist serve -model` answers /seeds?k<=N instantly from the first request (0 skips)")
		risN      = fs.Int("ris-samples", 0, "also draw this many RR samples (reverse credit walks) and persist the sketch in the snapshot, so `credist serve -model` answers its first approximate query (/spread?eps=) with zero sampling work (0 skips)")
		prov      = fs.Bool("prov", false, "also build the credit->actions provenance index and persist it in the snapshot, so `credist serve -model` and `credist explain -model` answer why-seed / why-reach queries (/explain) with zero index builds")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: credist learn [flags] -o model.bin

Learn the credit-distribution model once and save it as a durable binary
snapshot: the learned parameters, the fully scanned UC credit structure,
and the dataset lineage (content hashes of the graph and log). Reloading
the snapshot restores the model bit-for-bit without relearning or
rescanning — and against a log that has grown, only the unscanned tail is
processed.

  credist learn -preset flixster-small -o model.bin
  credist learn -preset flixster-small -seed-k 50 -o model.bin   # + seed prefix
  credist learn -preset flixster-small -ris-samples 100000 -o model.bin  # + RR sketch
  credist learn -preset flixster-small -prov -o model.bin        # + provenance index
  credist serve -preset flixster-small -model model.bin
  credist learn -graph d.graph -log d.log -lambda 0.001 -o model.bin

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *out == "" {
		fmt.Fprintln(os.Stderr, "credist learn: -o is required (where to write the snapshot)")
		os.Exit(1)
	}
	ds, err := loadDataset(*preset, *graphPath, *logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist learn:", strings.TrimPrefix(err.Error(), "credist: "))
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("dataset %s: %d users, %d propagations, %d tuples\n",
		ds.Name, ds.NumUsers(), st.NumActions, st.NumTuples)

	if *seedK < 0 {
		fmt.Fprintln(os.Stderr, "credist learn: -seed-k must be non-negative")
		os.Exit(1)
	}
	if *seedK > ds.NumUsers() {
		fmt.Fprintf(os.Stderr, "credist learn: -seed-k %d exceeds the user count %d\n", *seedK, ds.NumUsers())
		os.Exit(1)
	}

	start := time.Now()
	model := credist.Learn(ds, credist.Options{Lambda: *lambda, SimpleCredit: *simple})
	if *seedK > 0 {
		t := time.Now()
		res := model.Selection(*seedK)
		model.RecordSeedPrefix(res)
		fmt.Printf("selected %d-seed prefix (spread %.2f, %d gain evaluations) in %v\n",
			len(res.Seeds), res.Spread(), res.Lookups, time.Since(t).Round(time.Millisecond))
	}
	if *risN > 0 {
		t := time.Now()
		if err := model.BuildApproxSketch(*risN); err != nil {
			fmt.Fprintln(os.Stderr, "credist learn:", err)
			os.Exit(1)
		}
		ast := model.ApproxStats()
		fmt.Printf("drew %d RR samples (%.1f MiB sketch) in %v\n",
			ast.Samples, float64(ast.Bytes)/(1<<20), time.Since(t).Round(time.Millisecond))
	}
	if *prov {
		t := time.Now()
		pst := model.BuildProvIndex()
		fmt.Printf("built provenance index (%d influence pairs, %d action entries, %.1f MiB) in %v\n",
			pst.Pairs, pst.Entries, float64(pst.Bytes)/(1<<20), time.Since(t).Round(time.Millisecond))
	}
	if err := model.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "credist learn:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	p := model.NewPlanner()
	size := int64(0)
	if fi, err := os.Stat(*out); err == nil {
		size = fi.Size()
	}
	fmt.Printf("learned and scanned in %v: %d UC entries (%.1f MiB resident)\n",
		elapsed, p.Entries(), float64(p.ResidentBytes())/(1<<20))
	fmt.Printf("snapshot: %s (%.1f MiB), covers %d actions\n",
		*out, float64(size)/(1<<20), p.NumActions())
}
