package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"credist"
	"credist/internal/serve"
)

// runIngest is the `credist ingest` subcommand: stream a held-out action
// tail (as written by `datagen -stream`) into a running `credist serve`
// instance through POST /ingest. The tail file is parsed client-side and
// shipped inline, so the server may be remote.
func runIngest(args []string) {
	fs := flag.NewFlagSet("credist ingest", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8632", "base URL of the running credist serve instance")
		tail    = fs.String("tail", "", "action-tail file to stream (as written by `datagen -stream`); parsed locally and sent inline")
		compact = fs.Bool("compact", false, "fold the accumulated delta into the frozen base after the append")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: credist ingest [flags]

Stream new propagations into a running influence-query service without a
full model rebuild: the server scans only the appended action tail and
atomically swaps in the successor snapshot (see POST /ingest).

  datagen -preset flixster-small -stream 0.05 -out ./data
  credist serve -graph ./data/flixster-small.graph -log ./data/flixster-small.log &
  credist ingest -tail ./data/flixster-small.tail.log

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *tail == "" {
		fmt.Fprintln(os.Stderr, "credist ingest: -tail is required (a file written by `datagen -stream`)")
		os.Exit(1)
	}
	f, err := os.Open(*tail)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist ingest:", err)
		os.Exit(1)
	}
	tuples, err := credist.ReadTuples(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist ingest:", err)
		os.Exit(1)
	}
	if len(tuples) == 0 {
		fmt.Fprintf(os.Stderr, "credist ingest: %s holds no tuples\n", *tail)
		os.Exit(1)
	}

	reqTuples := make([]serve.IngestTuple, len(tuples))
	for i, t := range tuples {
		reqTuples[i] = serve.IngestTuple{User: t.User, Action: t.Action, Time: t.Time}
	}
	body, err := json.Marshal(map[string]any{"tuples": reqTuples, "compact": *compact})
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist ingest:", err)
		os.Exit(1)
	}
	resp, err := http.Post(*addr+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist ingest:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		fmt.Fprintf(os.Stderr, "credist ingest: server returned %s: %s\n", resp.Status, eb.Error)
		os.Exit(1)
	}
	var ir serve.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		fmt.Fprintln(os.Stderr, "credist ingest: decode response:", err)
		os.Exit(1)
	}
	fmt.Printf("ingested %d tuples into snapshot %d (%s): %d actions, %d users\n",
		ir.AppendedTuples, ir.Snapshot, ir.Dataset, ir.Actions, ir.Users)
	fmt.Printf("UC entries: %d total = %d base + %d delta (%d delta actions), %.1f MiB resident, %.0f ms\n",
		ir.Entries, ir.BaseEntries, ir.DeltaEntries, ir.DeltaActions,
		float64(ir.ResidentBytes)/(1<<20), ir.IngestMillis)
}
