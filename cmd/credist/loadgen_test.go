package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"credist"
	"credist/internal/datagen"
	"credist/internal/serve"
)

// TestLoadgenRun drives the workload generator against an in-process
// server and pins the report shape: every endpoint in the mix shows up,
// quantiles are ordered, and a clean run has zero errors.
func TestLoadgenRun(t *testing.T) {
	ds := credist.Generate(datagen.Config{
		Name: "loadgen-demo", NumUsers: 150, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 80, MeanInfluence: 0.1, MeanDelay: 8,
		SpontaneousPerAction: 1, Seed: 7,
	})
	snap, err := serve.Build(serve.Source{Dataset: ds, Lambda: 0.001})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	srv := httptest.NewServer(serve.New(snap).Handler())
	defer srv.Close()

	// Warm the expensive one-time paths (evaluator build, first CELF run)
	// so the measured run exercises steady-state serving: cold-start cost
	// is the cold-start benchmark's job, not loadgen's.
	for _, target := range []string{"/spread?seeds=1,2,3", "/seeds?k=3"} {
		resp, err := http.Get(srv.URL + target)
		if err != nil {
			t.Fatalf("warm %s: %v", target, err)
		}
		resp.Body.Close()
	}

	report, err := loadgenRun(loadgenConfig{
		Base: srv.URL, QPS: 400, Duration: 500 * time.Millisecond,
		K: 3, SpreadW: 8, GainW: 3, SeedsW: 1, Concurrency: 8, Seed: 1,
	})
	if err != nil {
		t.Fatalf("loadgenRun: %v", err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if report.Errors != 0 {
		t.Fatalf("%d/%d requests errored", report.Errors, report.Requests)
	}
	if report.Throughput <= 0 {
		t.Fatalf("throughput = %g", report.Throughput)
	}
	if report.P50Ms <= 0 || report.P99Ms < report.P50Ms {
		t.Fatalf("quantiles p50=%g p99=%g", report.P50Ms, report.P99Ms)
	}
	for _, name := range []string{"spread", "gain", "seeds"} {
		ep, ok := report.Endpoints[name]
		if !ok || ep.Requests == 0 {
			t.Errorf("endpoint %s missing from the report: %+v", name, report.Endpoints)
			continue
		}
		if ep.P99Ms < ep.P50Ms {
			t.Errorf("endpoint %s: p99 %g < p50 %g", name, ep.P99Ms, ep.P50Ms)
		}
	}
	if report.Users != 150 {
		t.Errorf("users = %d, want 150", report.Users)
	}

	// The front-end validates before hammering anything.
	if _, err := loadgenRun(loadgenConfig{Base: srv.URL, QPS: 0}); err == nil {
		t.Error("qps=0 accepted")
	}
	if _, err := loadgenRun(loadgenConfig{Base: srv.URL, QPS: 10, Duration: time.Millisecond, K: 0, SpreadW: 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := loadgenRun(loadgenConfig{Base: "http://127.0.0.1:1", QPS: 10, Duration: time.Millisecond, K: 1, SpreadW: 1}); err == nil {
		t.Error("unreachable server accepted")
	}
}

// TestQuantilesNearestRank pins the nearest-rank definition,
// ceil(q·n)−1: the reported quantile is the smallest sample with at
// least q·n of the population at or below it. The regression case is
// p50 of [1,2] — floor indexing reported 2.
func TestQuantilesNearestRank(t *testing.T) {
	cases := []struct {
		name     string
		lats     []float64
		p50, p99 float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{7}, 7, 7},
		{"two p50 is lower", []float64{1, 2}, 1, 2},
		{"unsorted input", []float64{2, 1}, 1, 2},
		{"three", []float64{1, 2, 3}, 2, 3},
		{"four", []float64{1, 2, 3, 4}, 2, 4},
		{"hundred", seqFloats(100), 50, 99},
		{"two hundred", seqFloats(200), 100, 198},
	}
	for _, tc := range cases {
		p50, p99 := quantiles(append([]float64(nil), tc.lats...))
		if p50 != tc.p50 || p99 != tc.p99 {
			t.Errorf("%s: quantiles = %g, %g, want %g, %g", tc.name, p50, p99, tc.p50, tc.p99)
		}
	}
}

// seqFloats is [1, 2, ..., n]: sample k sits at exactly the k/n quantile.
func seqFloats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

func TestParseMix(t *testing.T) {
	s, g, sd, err := parseMix("spread=8,gain=3,seeds=1")
	if err != nil || s != 8 || g != 3 || sd != 1 {
		t.Fatalf("parseMix = %d,%d,%d, %v", s, g, sd, err)
	}
	for _, bad := range []string{"spread=0,gain=0,seeds=0", "nope=3", "spread=x", "spread"} {
		if _, _, _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}
