package main

import (
	"strings"
	"testing"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("1, 2,3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || seeds[0] != 1 || seeds[2] != 3 {
		t.Fatalf("seeds = %v", seeds)
	}
	for _, bad := range []string{"", "x", "-1", "10", "1,,x"} {
		if _, err := parseSeeds(bad, 10); err == nil {
			t.Errorf("input %q: expected error", bad)
		}
	}
	// Trailing commas and blanks are tolerated.
	if seeds, err := parseSeeds("4,", 10); err != nil || len(seeds) != 1 {
		t.Fatalf("trailing comma: %v, %v", seeds, err)
	}
}

func TestBuildObjective(t *testing.T) {
	if obj, err := buildObjective("", -1, "", "", 0, 10); err != nil || obj != nil {
		t.Fatalf("all-default flags: %v, %v (want nil objective)", obj, err)
	}
	obj, err := buildObjective("1,2", 30, "4", "3:2.5", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Audience) != 2 || !obj.Windowed || obj.Window != 30 ||
		len(obj.Blocked) != 1 || obj.Budget != 5 {
		t.Fatalf("objective = %+v", obj)
	}
	if obj.Costs[3] != 2.5 || obj.Costs[0] != 1 {
		t.Fatalf("costs = %v, want unit costs with the 3:2.5 override", obj.Costs)
	}
	// window=0 is a real window (only instantaneous influence), not "off".
	if obj, err := buildObjective("", 0, "", "", 0, 10); err != nil || obj == nil || !obj.Windowed {
		t.Fatalf("window=0: %+v, %v", obj, err)
	}
	for _, bad := range [][2]string{{"x", ""}, {"99", ""}, {"", "x:1"}, {"", "1:x"}, {"", "99:1"}, {"", "5"}} {
		if _, err := buildObjective(bad[0], -1, "", bad[1], 0, 10); err == nil {
			t.Errorf("audience=%q costs=%q accepted", bad[0], bad[1])
		}
	}
}

func TestLoadDatasetValidation(t *testing.T) {
	if _, err := loadDataset("", "", ""); err == nil {
		t.Fatal("no inputs accepted")
	}
	if _, err := loadDataset("", "g-only", ""); err == nil {
		t.Fatal("graph without log accepted")
	}
	// Unknown presets and missing inputs both name the valid presets, so
	// the error doubles as usage help.
	if _, err := loadDataset("no-such-preset", "", ""); err == nil {
		t.Fatal("unknown preset accepted")
	} else if !strings.Contains(err.Error(), "flixster-small") {
		t.Errorf("unknown-preset error does not list valid presets: %v", err)
	}
	if _, err := loadDataset("", "", ""); !strings.Contains(err.Error(), "flixster-small") {
		t.Errorf("missing-input error does not list valid presets: %v", err)
	}
}
