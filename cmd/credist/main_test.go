package main

import (
	"strings"
	"testing"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("1, 2,3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || seeds[0] != 1 || seeds[2] != 3 {
		t.Fatalf("seeds = %v", seeds)
	}
	for _, bad := range []string{"", "x", "-1", "10", "1,,x"} {
		if _, err := parseSeeds(bad, 10); err == nil {
			t.Errorf("input %q: expected error", bad)
		}
	}
	// Trailing commas and blanks are tolerated.
	if seeds, err := parseSeeds("4,", 10); err != nil || len(seeds) != 1 {
		t.Fatalf("trailing comma: %v, %v", seeds, err)
	}
}

func TestLoadDatasetValidation(t *testing.T) {
	if _, err := loadDataset("", "", ""); err == nil {
		t.Fatal("no inputs accepted")
	}
	if _, err := loadDataset("", "g-only", ""); err == nil {
		t.Fatal("graph without log accepted")
	}
	// Unknown presets and missing inputs both name the valid presets, so
	// the error doubles as usage help.
	if _, err := loadDataset("no-such-preset", "", ""); err == nil {
		t.Fatal("unknown preset accepted")
	} else if !strings.Contains(err.Error(), "flixster-small") {
		t.Errorf("unknown-preset error does not list valid presets: %v", err)
	}
	if _, err := loadDataset("", "", ""); !strings.Contains(err.Error(), "flixster-small") {
		t.Errorf("missing-input error does not list valid presets: %v", err)
	}
}
