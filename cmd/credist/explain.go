package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"credist"
)

// runExplain is the `credist explain` subcommand: offline why-provenance
// queries over a learned (or snapshot-restored) model. -seed decomposes a
// candidate's marginal gain into its top credit paths; -set with -reach
// decomposes the credit a seed set pushes onto one target, by seed and by
// path. Both decompositions are bit-consistent with the answers they
// explain: the printed gain is exactly the selection's gain, and the
// per-seed shares sum exactly to the printed total.
func runExplain(args []string) {
	fs := flag.NewFlagSet("credist explain", flag.ExitOnError)
	var (
		preset    = fs.String("preset", "", "explain over a built-in dataset; one of: "+presetList())
		graphPath = fs.String("graph", "", "graph edge-list file (as written by datagen); requires -log")
		logPath   = fs.String("log", "", "action log file (as written by datagen); requires -graph")
		modelPath = fs.String("model", "", "optional binary model snapshot (credist learn -o): skips learning and the log scan; a snapshot saved with `credist learn -prov` restores the provenance index too")
		lambda    = fs.Float64("lambda", 0.001, "CD truncation threshold (paper default 0.001); with -model, must match the stored value or be left unset")
		simple    = fs.Bool("simple-credit", false, "use the equal-split 1/d_in direct-credit rule instead of the learned time-aware rule (Eq. 9)")
		seed      = fs.Int("seed", -1, "why-seed: decompose this candidate's marginal gain into its top credit paths")
		set       = fs.String("set", "", "why-reach: comma-separated seed set (requires -reach)")
		reach     = fs.Int("reach", -1, "why-reach: decompose the credit the -set seeds push onto this target")
		top       = fs.Int("top", 10, "how many credit paths to print")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: credist explain [flags] -seed u
       credist explain [flags] -set 1,2,3 -reach v

Why-provenance over the credit-distribution model. -seed answers "why is
this user a good seed": its marginal gain — bit-for-bit the value seed
selection uses — decomposed into the (influencer, influenced, action)
credit paths behind it. -set/-reach answers "who pushed this much credit
onto that user": the total influence credit the set claims on the target,
decomposed by seed (shares sum exactly to the total) and by path.

  credist explain -preset flixster-small -seed 42
  credist explain -preset flixster-small -set 1,2,3 -reach 99 -top 5
  credist explain -graph d.graph -log d.log -model model.bin -seed 42

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "credist explain: "+format+"\n", args...)
		os.Exit(1)
	}
	wantSeed := *seed >= 0
	wantReach := *set != "" || *reach >= 0
	switch {
	case wantSeed && wantReach:
		fail("-seed and -set/-reach are mutually exclusive")
	case !wantSeed && !wantReach:
		fail("nothing to explain: pass -seed u, or -set 1,2,3 -reach v")
	case wantReach && (*set == "" || *reach < 0):
		fail("why-reach needs both -set and -reach")
	}
	if *top < 1 {
		fail("-top must be a positive integer, got %d", *top)
	}

	ds, err := loadDataset(*preset, *graphPath, *logPath)
	if err != nil {
		fail("%s", strings.TrimPrefix(err.Error(), "credist: "))
	}
	opts := credist.Options{Lambda: *lambda, SimpleCredit: *simple}
	var model *credist.Model
	start := time.Now()
	if *modelPath != "" {
		// Adopt the snapshot's stored options unless flags were passed
		// explicitly (same convention as `credist serve -model`).
		explicit := make(map[string]bool)
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["lambda"] {
			opts.Lambda = 0
		}
		if !explicit["simple-credit"] {
			opts.SimpleCredit = false
		}
		model, err = credist.LoadModel(ds, *modelPath, opts)
		if err != nil {
			fail("%s", strings.TrimPrefix(err.Error(), "credist: "))
		}
	} else {
		model = credist.Learn(ds, opts)
	}

	if wantSeed {
		if *seed >= ds.NumUsers() {
			fail("-seed %d out of range [0,%d)", *seed, ds.NumUsers())
		}
		ex := model.ExplainSeed(credist.NodeID(*seed), *top)
		fmt.Printf("candidate %d: marginal gain %.6f (%d credit paths, model ready in %v)\n",
			ex.Node, ex.Gain, ex.TotalPaths, time.Since(start).Round(time.Millisecond))
		printPaths(ex.Paths)
		return
	}

	seeds, err := parseSeeds(*set, ds.NumUsers())
	if err != nil {
		fail("-set: %s", strings.TrimPrefix(err.Error(), "credist: "))
	}
	if *reach >= ds.NumUsers() {
		fail("-reach %d out of range [0,%d)", *reach, ds.NumUsers())
	}
	ex := model.ExplainReach(seeds, credist.NodeID(*reach), *top)
	fmt.Printf("target %d: total credit %.6f from %d seeds (%d credit paths, model ready in %v)\n",
		ex.Target, ex.Total, len(ex.PerSeed), ex.TotalPaths, time.Since(start).Round(time.Millisecond))
	for _, ps := range ex.PerSeed {
		fmt.Printf("  seed %6d: share %.6f\n", ps.Seed, ps.Share)
	}
	printPaths(ex.Paths)
}

func printPaths(paths []credist.ProvPath) {
	for i, p := range paths {
		fmt.Printf("  path %2d: user %6d -> user %6d  action %6d  credit %.6f\n",
			i+1, p.Influencer, p.Influenced, p.Action, p.Credit)
	}
}
