// credist loadgen replays a mixed /spread + /gain + /seeds workload
// against a running credist server at a fixed target rate and reports
// latency quantiles and achieved throughput, in the same JSON shape as
// the repo's other BENCH_*.json artifacts:
//
//	credist serve -preset flixster-small -addr :8632 &
//	credist loadgen -addr http://localhost:8632 -qps 200 -duration 10s -o BENCH_serve.json
//
// The load loop is open: requests are scheduled on a fixed clock
// regardless of completions (up to -concurrency in flight), so a slow
// server shows up as achieved throughput below the target and growing
// tail latency, not as a silently slower clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type loadgenConfig struct {
	Base        string        // server base URL, no trailing slash
	QPS         float64       // target request rate
	Duration    time.Duration // wall-clock run length
	K           int           // k for /seeds requests
	SpreadW     int           // relative mix weights
	GainW       int
	SeedsW      int
	Concurrency int // in-flight cap
	Seed        int64
}

// loadgenReport is the JSON artifact. Latencies are milliseconds.
type loadgenReport struct {
	Commit      string  `json:"commit"`
	Date        string  `json:"date"`
	Target      string  `json:"target"`
	Users       int     `json:"users"`
	TargetQPS   float64 `json:"target_qps"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Throughput  float64 `json:"throughput_qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`

	Endpoints map[string]loadgenEndpoint `json:"endpoints"`
}

type loadgenEndpoint struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func runLoadgen(args []string) {
	fs := flag.NewFlagSet("credist loadgen", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "http://localhost:8632", "base URL of the running credist server")
		qps      = fs.Float64("qps", 200, "target request rate across all endpoints")
		duration = fs.Duration("duration", 10*time.Second, "how long to run")
		k        = fs.Int("k", 5, "k for /seeds requests")
		mix      = fs.String("mix", "spread=8,gain=3,seeds=1", "relative endpoint weights as name=weight pairs")
		conc     = fs.Int("concurrency", 16, "maximum requests in flight")
		seed     = fs.Int64("seed", 1, "workload RNG seed (request kinds and ids)")
		out      = fs.String("o", "", "write the JSON report to this file (default stdout)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: credist loadgen [flags]

Replay a mixed /spread+/gain+/seeds workload against a running server:

  credist loadgen -addr http://localhost:8632 -qps 200 -duration 10s -o BENCH_serve.json

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	cfg := loadgenConfig{
		Base: strings.TrimRight(*addr, "/"), QPS: *qps, Duration: *duration,
		K: *k, Concurrency: *conc, Seed: *seed,
	}
	var err error
	if cfg.SpreadW, cfg.GainW, cfg.SeedsW, err = parseMix(*mix); err != nil {
		fmt.Fprintln(os.Stderr, "credist loadgen:", err)
		os.Exit(1)
	}
	report, err := loadgenRun(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist loadgen:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "credist loadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
		fmt.Printf("loadgen: %d requests (%d errors), %.1f req/s achieved, p50 %.2fms p99 %.2fms -> %s\n",
			report.Requests, report.Errors, report.Throughput, report.P50Ms, report.P99Ms, *out)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "credist loadgen:", err)
		os.Exit(1)
	}
}

func parseMix(raw string) (spread, gain, seeds int, err error) {
	for _, pair := range strings.Split(raw, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("-mix: want name=weight pairs, got %q", pair)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return 0, 0, 0, fmt.Errorf("-mix: bad weight %q for %q", val, name)
		}
		switch strings.TrimSpace(name) {
		case "spread":
			spread = w
		case "gain":
			gain = w
		case "seeds":
			seeds = w
		default:
			return 0, 0, 0, fmt.Errorf("-mix: unknown endpoint %q (spread, gain, seeds)", name)
		}
	}
	if spread+gain+seeds == 0 {
		return 0, 0, 0, fmt.Errorf("-mix: all weights zero")
	}
	return spread, gain, seeds, nil
}

// loadgenRun drives the workload and aggregates the report. Split from
// the flag front-end so tests can call it against an httptest server.
func loadgenRun(cfg loadgenConfig) (*loadgenReport, error) {
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("qps must be positive, got %g", cfg.QPS)
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	users, err := loadgenUsers(cfg.Base)
	if err != nil {
		return nil, err
	}
	if cfg.K < 1 || cfg.K > users {
		return nil, fmt.Errorf("k=%d outside the server's universe [1,%d]", cfg.K, users)
	}

	type sample struct {
		endpoint string
		ms       float64
		err      bool
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	slots := make(chan struct{}, cfg.Concurrency)
	client := &http.Client{Timeout: 30 * time.Second}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.SpreadW + cfg.GainW + cfg.SeedsW

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	for time.Now().Before(deadline) {
		<-ticker.C
		// Pick the endpoint and its ids on the scheduler goroutine so the
		// request stream is a deterministic function of -seed.
		var endpoint, target string
		switch p := rng.Intn(total); {
		case p < cfg.SpreadW:
			endpoint = "spread"
			ids := distinctIDs(rng, users, 3)
			target = fmt.Sprintf("%s/spread?seeds=%d,%d,%d", cfg.Base, ids[0], ids[1], ids[2])
		case p < cfg.SpreadW+cfg.GainW:
			endpoint = "gain"
			ids := distinctIDs(rng, users, 3)
			target = fmt.Sprintf("%s/gain?seeds=%d&candidates=%d,%d", cfg.Base, ids[0], ids[1], ids[2])
		default:
			endpoint = "seeds"
			target = fmt.Sprintf("%s/seeds?k=%d", cfg.Base, cfg.K)
		}
		select {
		case slots <- struct{}{}:
		default:
			// At the in-flight cap: drop the tick rather than queue, so
			// latency measures the server, not our backlog.
			mu.Lock()
			samples = append(samples, sample{endpoint: endpoint, err: true})
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(endpoint, target string) {
			defer wg.Done()
			defer func() { <-slots }()
			t0 := time.Now()
			resp, err := client.Get(target)
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			bad := err != nil
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				bad = bad || resp.StatusCode != http.StatusOK
			}
			mu.Lock()
			samples = append(samples, sample{endpoint: endpoint, ms: ms, err: bad})
			mu.Unlock()
		}(endpoint, target)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := &loadgenReport{
		Commit:      benchCommit(),
		Date:        time.Now().UTC().Format(time.RFC3339),
		Target:      cfg.Base,
		Users:       users,
		TargetQPS:   cfg.QPS,
		DurationSec: elapsed.Seconds(),
		Endpoints:   map[string]loadgenEndpoint{},
	}
	var all []float64
	perEndpoint := map[string][]float64{}
	for _, s := range samples {
		report.Requests++
		if s.err {
			report.Errors++
			continue
		}
		all = append(all, s.ms)
		perEndpoint[s.endpoint] = append(perEndpoint[s.endpoint], s.ms)
	}
	report.Throughput = float64(report.Requests-report.Errors) / elapsed.Seconds()
	report.P50Ms, report.P99Ms = quantiles(all)
	for name, lats := range perEndpoint {
		p50, p99 := quantiles(lats)
		report.Endpoints[name] = loadgenEndpoint{Requests: len(lats), P50Ms: p50, P99Ms: p99}
	}
	return report, nil
}

// distinctIDs draws n distinct user ids; the server 400s duplicate ids
// in one request, so colliding draws are re-rolled.
func distinctIDs(rng *rand.Rand, users, n int) []int {
	ids := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for len(ids) < n {
		id := rng.Intn(users)
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return ids
}

// loadgenUsers asks /stats for the universe size the workload draws
// ids from (and doubles as the up-and-serving check).
func loadgenUsers(base string) (int, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return 0, fmt.Errorf("is the server running? GET /stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	var st struct {
		Users int `json:"users"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("GET /stats: %w", err)
	}
	if st.Users <= 0 {
		return 0, fmt.Errorf("GET /stats reported %d users", st.Users)
	}
	return st.Users, nil
}

// quantiles reports nearest-rank p50/p99: the smallest sample with at
// least q·n of the population at or below it, i.e. index ceil(q·n)−1.
// Floor indexing (lats[n*50/100]) would over-report — p50 of [1,2] is 1,
// not 2.
func quantiles(lats []float64) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Float64s(lats)
	return lats[nearestRank(50, len(lats))], lats[nearestRank(99, len(lats))]
}

// nearestRank is ceil(pct·n/100)−1 as a valid index into n sorted samples.
func nearestRank(pct, n int) int {
	idx := (pct*n+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// benchCommit mirrors the other BENCH_*.json writers: the commit comes
// from CI's environment, "local" otherwise.
func benchCommit() string {
	if c := os.Getenv("BENCH_COMMIT"); c != "" {
		return c
	}
	return "local"
}
