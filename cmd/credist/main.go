// Command credist selects influence-maximizing seed sets from a social
// graph and an action log using the credit-distribution model, scores
// given seed sets, persists learned models as binary snapshots, or runs a
// long-lived influence-query HTTP service:
//
//	credist -preset flixster-small -k 50
//	credist -graph data/d.graph -log data/d.log -k 20 -method cd
//	credist -preset flixster-small -eval 12,99,340
//	credist learn -preset flixster-small -o model.bin
//	credist serve -preset flixster-small -model model.bin -addr :8632
//	credist ingest -tail data/flixster-small.tail.log
//
// Selection output: one line per seed with its marginal gain, then the
// predicted total spread. Run `credist -h`, `credist learn -h`, `credist
// serve -h`, or `credist ingest -h` for the full flag reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"credist"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "learn":
			runLearn(os.Args[2:])
			return
		case "serve":
			runServe(os.Args[2:])
			return
		case "ingest":
			runIngest(os.Args[2:])
			return
		}
	}
	runSelect(os.Args[1:])
}

// presetList renders the valid preset names for help text and errors.
func presetList() string { return strings.Join(credist.PresetNames(), ", ") }

func runSelect(args []string) {
	fs := flag.NewFlagSet("credist", flag.ExitOnError)
	var (
		preset    = fs.String("preset", "", "generate a built-in dataset instead of loading files; one of: "+presetList())
		graphPath = fs.String("graph", "", "graph edge-list file (one \"from to\" pair per line, as written by datagen); requires -log")
		logPath   = fs.String("log", "", "action log file (one \"user action time\" tuple per line, as written by datagen); requires -graph")
		k         = fs.Int("k", 10, "number of seeds to select")
		method    = fs.String("method", "cd", "selection method: cd (credit distribution, CELF), highdeg (top out-degree), pagerank (top PageRank on the reversed graph)")
		lambda    = fs.Float64("lambda", 0.001, "CD truncation threshold: path credits below it are discarded during the scan, bounding memory (paper default 0.001; 0 keeps every credit)")
		simple    = fs.Bool("simple-credit", false, "use the equal-split 1/d_in direct-credit rule instead of the learned time-aware rule (Eq. 9)")
		evalSet   = fs.String("eval", "", "skip selection; score this comma-separated list of user ids under the CD model instead (e.g. -eval 3,17,250)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: credist [flags]         select or score influence seed sets
       credist learn [flags]   learn once and save a binary model snapshot (see credist learn -h)
       credist serve [flags]   run the influence-query HTTP service (see credist serve -h)
       credist ingest [flags]  stream new actions into a running service (see credist ingest -h)

Select seeds from a built-in preset or from dataset files:

  credist -preset flixster-small -k 50
  credist -graph data/d.graph -log data/d.log -k 20 -method cd
  credist -preset flickr-small -eval 12,99,340

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	ds, err := loadDataset(*preset, *graphPath, *logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist:", strings.TrimPrefix(err.Error(), "credist: "))
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("dataset %s: %d users, %d propagations, %d tuples\n",
		ds.Name, ds.NumUsers(), st.NumActions, st.NumTuples)

	model := credist.Learn(ds, credist.Options{Lambda: *lambda, SimpleCredit: *simple})

	if *evalSet != "" {
		seeds, err := parseSeeds(*evalSet, ds.NumUsers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "credist:", err)
			os.Exit(1)
		}
		for _, s := range seeds {
			fmt.Printf("user %6d: actions %4d  influenceability %.2f\n",
				s, ds.Log.ActionCount(s), model.Influenceability(s))
		}
		fmt.Printf("predicted spread (CD model): %.2f\n", model.Spread(seeds))
		return
	}

	var seeds []credist.NodeID
	var gains []float64
	switch *method {
	case "cd":
		seeds, gains = model.SelectSeeds(*k)
	case "highdeg":
		seeds = credist.HighDegreeSeeds(ds, *k)
	case "pagerank":
		seeds = credist.PageRankSeeds(ds, *k)
	default:
		fmt.Fprintf(os.Stderr, "credist: unknown method %q (valid methods: cd, highdeg, pagerank)\n", *method)
		os.Exit(1)
	}

	for i, s := range seeds {
		if gains != nil {
			fmt.Printf("seed %2d: user %6d  marginal gain %8.2f\n", i+1, s, gains[i])
		} else {
			fmt.Printf("seed %2d: user %6d\n", i+1, s)
		}
	}
	fmt.Printf("predicted spread (CD model): %.2f\n", model.Spread(seeds))
}

func parseSeeds(list string, numUsers int) ([]credist.NodeID, error) {
	var seeds []credist.NodeID
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad user id %q: %w", part, err)
		}
		if id < 0 || int(id) >= numUsers {
			return nil, fmt.Errorf("user id %d out of range [0,%d)", id, numUsers)
		}
		seeds = append(seeds, credist.NodeID(id))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", list)
	}
	return seeds, nil
}

func loadDataset(preset, graphPath, logPath string) (*credist.Dataset, error) {
	if preset != "" {
		return credist.GeneratePreset(preset)
	}
	if graphPath == "" || logPath == "" {
		return nil, fmt.Errorf("provide -preset (one of: %s), or both -graph and -log", presetList())
	}
	return credist.LoadDataset("custom", graphPath, logPath)
}
