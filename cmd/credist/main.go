// Command credist selects influence-maximizing seed sets from a social
// graph and an action log using the credit-distribution model, scores
// given seed sets, persists learned models as binary snapshots, or runs a
// long-lived influence-query HTTP service:
//
//	credist -preset flixster-small -k 50
//	credist -graph data/d.graph -log data/d.log -k 20 -method cd
//	credist -preset flixster-small -eval 12,99,340
//	credist -preset flixster-small -k 20 -audience 5,9,13 -window 30
//	credist -preset flixster-small -k 20 -costs 3:2.5,7:0.5 -budget 10
//	credist learn -preset flixster-small -o model.bin
//	credist serve -preset flixster-small -model model.bin -addr :8632
//	credist explain -preset flixster-small -seed 42
//	credist explain -preset flixster-small -set 1,2,3 -reach 99
//	credist ingest -tail data/flixster-small.tail.log
//	credist loadgen -addr http://localhost:8632 -qps 200 -duration 10s
//
// Selection output: one line per seed with its marginal gain, then the
// predicted total spread. Run `credist -h`, `credist learn -h`, `credist
// serve -h`, `credist explain -h`, `credist ingest -h`, or `credist
// loadgen -h` for the full flag reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"credist"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "learn":
			runLearn(os.Args[2:])
			return
		case "serve":
			runServe(os.Args[2:])
			return
		case "explain":
			runExplain(os.Args[2:])
			return
		case "ingest":
			runIngest(os.Args[2:])
			return
		case "loadgen":
			runLoadgen(os.Args[2:])
			return
		}
	}
	runSelect(os.Args[1:])
}

// presetList renders the valid preset names for help text and errors.
func presetList() string { return strings.Join(credist.PresetNames(), ", ") }

func runSelect(args []string) {
	fs := flag.NewFlagSet("credist", flag.ExitOnError)
	var (
		preset    = fs.String("preset", "", "generate a built-in dataset instead of loading files; one of: "+presetList())
		graphPath = fs.String("graph", "", "graph edge-list file (one \"from to\" pair per line, as written by datagen); requires -log")
		logPath   = fs.String("log", "", "action log file (one \"user action time\" tuple per line, as written by datagen); requires -graph")
		k         = fs.Int("k", 10, "number of seeds to select")
		method    = fs.String("method", "cd", "selection method: cd (credit distribution, CELF), highdeg (top out-degree), pagerank (top PageRank on the reversed graph)")
		lambda    = fs.Float64("lambda", 0.001, "CD truncation threshold: path credits below it are discarded during the scan, bounding memory (paper default 0.001; 0 keeps every credit)")
		simple    = fs.Bool("simple-credit", false, "use the equal-split 1/d_in direct-credit rule instead of the learned time-aware rule (Eq. 9)")
		evalSet   = fs.String("eval", "", "skip selection; score this comma-separated list of user ids under the CD model instead (e.g. -eval 3,17,250)")
		audience  = fs.String("audience", "", "campaign objective: count only influence on these comma-separated user ids")
		window    = fs.Float64("window", -1, "campaign objective: count only influence arriving within this many time units of the seeding (action-log units; negative = no window)")
		blocked   = fs.String("blocked", "", "campaign objective: these comma-separated user ids are already committed to a rival; gains are marginal over them and they are never selected")
		costs     = fs.String("costs", "", "campaign objective: per-user seeding costs as id:cost pairs over implicit unit costs (e.g. -costs 3:2.5,7:0.5); -method cd only")
		budget    = fs.Float64("budget", 0, "campaign objective: stop cost-benefit CELF when the next affordable seed would exceed this total cost; -method cd only")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: credist [flags]         select or score influence seed sets
       credist learn [flags]   learn once and save a binary model snapshot (see credist learn -h)
       credist serve [flags]   run the influence-query HTTP service (see credist serve -h)
       credist explain [flags] decompose a gain or a reach into its credit paths (see credist explain -h)
       credist ingest [flags]  stream new actions into a running service (see credist ingest -h)
       credist loadgen [flags] replay a mixed query workload against a running service (see credist loadgen -h)

Select seeds from a built-in preset or from dataset files:

  credist -preset flixster-small -k 50
  credist -graph data/d.graph -log data/d.log -k 20 -method cd
  credist -preset flickr-small -eval 12,99,340

Campaign objectives (see docs/ARCHITECTURE.md):

  credist -preset flixster-small -k 20 -audience 5,9,13 -window 30
  credist -preset flixster-small -k 20 -costs 3:2.5,7:0.5 -budget 10 -blocked 42

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	ds, err := loadDataset(*preset, *graphPath, *logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist:", strings.TrimPrefix(err.Error(), "credist: "))
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("dataset %s: %d users, %d propagations, %d tuples\n",
		ds.Name, ds.NumUsers(), st.NumActions, st.NumTuples)

	model := credist.Learn(ds, credist.Options{Lambda: *lambda, SimpleCredit: *simple})

	obj, err := buildObjective(*audience, *window, *blocked, *costs, *budget, ds.NumUsers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist:", strings.TrimPrefix(err.Error(), "credist: "))
		os.Exit(1)
	}

	if *evalSet != "" {
		seeds, err := parseSeeds(*evalSet, ds.NumUsers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "credist:", strings.TrimPrefix(err.Error(), "credist: "))
			os.Exit(1)
		}
		if obj != nil && (obj.Costs != nil || obj.Budget != 0) {
			fmt.Fprintln(os.Stderr, "credist: -costs and -budget apply to seed selection, not -eval scoring")
			os.Exit(1)
		}
		for _, s := range seeds {
			fmt.Printf("user %6d: actions %4d  influenceability %.2f\n",
				s, ds.Log.ActionCount(s), model.Influenceability(s))
		}
		fmt.Printf("predicted spread (CD model): %.2f\n", objSpread(model, seeds, obj))
		return
	}

	var seeds []credist.NodeID
	var gains []float64
	switch *method {
	case "cd":
		if obj != nil {
			res, err := model.SelectSeedsObj(*k, obj)
			if err != nil {
				fmt.Fprintln(os.Stderr, "credist:", strings.TrimPrefix(err.Error(), "credist: "))
				os.Exit(1)
			}
			seeds, gains = res.Seeds, res.Gains
		} else {
			seeds, gains = model.SelectSeeds(*k)
		}
	case "highdeg", "pagerank":
		if obj != nil && (obj.Costs != nil || obj.Budget != 0 || obj.Blocked != nil) {
			fmt.Fprintf(os.Stderr, "credist: -costs, -budget, and -blocked apply to -method cd only\n")
			os.Exit(1)
		}
		if *method == "highdeg" {
			seeds = credist.HighDegreeSeeds(ds, *k)
		} else {
			seeds = credist.PageRankSeeds(ds, *k)
		}
	default:
		fmt.Fprintf(os.Stderr, "credist: unknown method %q (valid methods: cd, highdeg, pagerank)\n", *method)
		os.Exit(1)
	}

	for i, s := range seeds {
		if gains != nil {
			fmt.Printf("seed %2d: user %6d  marginal gain %8.2f\n", i+1, s, gains[i])
		} else {
			fmt.Printf("seed %2d: user %6d\n", i+1, s)
		}
	}
	fmt.Printf("predicted spread (CD model): %.2f\n", objSpread(model, seeds, obj))
}

// buildObjective assembles a campaign objective from the CLI flags, nil
// when every flag is at its default (the global-spread objective).
func buildObjective(audience string, window float64, blocked, costs string, budget float64, numUsers int) (*credist.Objective, error) {
	var obj credist.Objective
	touched := false
	if audience != "" {
		ids, err := parseSeeds(audience, numUsers)
		if err != nil {
			return nil, fmt.Errorf("-audience: %w", err)
		}
		obj.Audience, touched = ids, true
	}
	if window >= 0 {
		obj.Windowed, obj.Window, touched = true, window, true
	}
	if blocked != "" {
		ids, err := parseSeeds(blocked, numUsers)
		if err != nil {
			return nil, fmt.Errorf("-blocked: %w", err)
		}
		obj.Blocked, touched = ids, true
	}
	if costs != "" {
		vec, err := parseCostVector(costs, numUsers)
		if err != nil {
			return nil, err
		}
		obj.Costs, touched = vec, true
	}
	if budget != 0 {
		obj.Budget, touched = budget, true
	}
	if !touched {
		return nil, nil
	}
	return &obj, nil
}

// parseCostVector expands "id:cost" pairs over implicit unit costs into
// the full per-user vector the objective layer expects.
func parseCostVector(raw string, numUsers int) ([]float64, error) {
	costs := make([]float64, numUsers)
	for i := range costs {
		costs[i] = 1
	}
	for _, pair := range strings.Split(raw, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, val, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("-costs: want id:cost pairs (e.g. 3:2.5,7:0.5), got %q", pair)
		}
		u, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || u < 0 || u >= numUsers {
			return nil, fmt.Errorf("-costs: bad user id %q (universe [0,%d))", id, numUsers)
		}
		c, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("-costs: bad cost %q for user %d", val, u)
		}
		costs[u] = c
	}
	return costs, nil
}

// objSpread scores a seed set under the objective's evaluation half
// (costs and budget shape selection, not scoring).
func objSpread(model *credist.Model, seeds []credist.NodeID, obj *credist.Objective) float64 {
	if obj == nil {
		return model.Spread(seeds)
	}
	eval := *obj
	eval.Costs, eval.Budget = nil, 0
	spread, err := model.SpreadObj(seeds, &eval)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist:", strings.TrimPrefix(err.Error(), "credist: "))
		os.Exit(1)
	}
	return spread
}

func parseSeeds(list string, numUsers int) ([]credist.NodeID, error) {
	var seeds []credist.NodeID
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad user id %q: %w", part, err)
		}
		if id < 0 || int(id) >= numUsers {
			return nil, fmt.Errorf("user id %d out of range [0,%d)", id, numUsers)
		}
		seeds = append(seeds, credist.NodeID(id))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", list)
	}
	return seeds, nil
}

func loadDataset(preset, graphPath, logPath string) (*credist.Dataset, error) {
	if preset != "" {
		return credist.GeneratePreset(preset)
	}
	if graphPath == "" || logPath == "" {
		return nil, fmt.Errorf("provide -preset (one of: %s), or both -graph and -log", presetList())
	}
	return credist.LoadDataset("custom", graphPath, logPath)
}
