// Command credist selects influence-maximizing seed sets from a social
// graph and an action log using the credit-distribution model, or the
// High-Degree / PageRank baselines for comparison:
//
//	credist -preset flixster-small -k 50
//	credist -graph data/d.graph -log data/d.log -k 20 -method cd
//
// Output: one line per seed with its marginal gain, then the predicted
// total spread.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"credist"
)

func main() {
	var (
		preset    = flag.String("preset", "", "generate a built-in dataset instead of loading files")
		graphPath = flag.String("graph", "", "graph edge-list file")
		logPath   = flag.String("log", "", "action log file")
		k         = flag.Int("k", 10, "number of seeds")
		method    = flag.String("method", "cd", "selection method: cd, highdeg, pagerank")
		lambda    = flag.Float64("lambda", 0.001, "CD truncation threshold")
		simple    = flag.Bool("simple-credit", false, "use 1/d_in direct credit instead of the time-aware rule")
		evalSet   = flag.String("eval", "", "skip selection; score this comma-separated list of user ids instead")
	)
	flag.Parse()

	ds, err := loadDataset(*preset, *graphPath, *logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist:", err)
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("dataset %s: %d users, %d propagations, %d tuples\n",
		ds.Name, ds.NumUsers(), st.NumActions, st.NumTuples)

	model := credist.Learn(ds, credist.Options{Lambda: *lambda, SimpleCredit: *simple})

	if *evalSet != "" {
		seeds, err := parseSeeds(*evalSet, ds.NumUsers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "credist:", err)
			os.Exit(1)
		}
		for _, s := range seeds {
			fmt.Printf("user %6d: actions %4d  influenceability %.2f\n",
				s, ds.Log.ActionCount(s), model.Influenceability(s))
		}
		fmt.Printf("predicted spread (CD model): %.2f\n", model.Spread(seeds))
		return
	}

	var seeds []credist.NodeID
	var gains []float64
	switch *method {
	case "cd":
		seeds, gains = model.SelectSeeds(*k)
	case "highdeg":
		seeds = credist.HighDegreeSeeds(ds, *k)
	case "pagerank":
		seeds = credist.PageRankSeeds(ds, *k)
	default:
		fmt.Fprintf(os.Stderr, "credist: unknown method %q\n", *method)
		os.Exit(1)
	}

	for i, s := range seeds {
		if gains != nil {
			fmt.Printf("seed %2d: user %6d  marginal gain %8.2f\n", i+1, s, gains[i])
		} else {
			fmt.Printf("seed %2d: user %6d\n", i+1, s)
		}
	}
	fmt.Printf("predicted spread (CD model): %.2f\n", model.Spread(seeds))
}

func parseSeeds(list string, numUsers int) ([]credist.NodeID, error) {
	var seeds []credist.NodeID
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad user id %q: %w", part, err)
		}
		if id < 0 || int(id) >= numUsers {
			return nil, fmt.Errorf("user id %d out of range [0,%d)", id, numUsers)
		}
		seeds = append(seeds, credist.NodeID(id))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", list)
	}
	return seeds, nil
}

func loadDataset(preset, graphPath, logPath string) (*credist.Dataset, error) {
	if preset != "" {
		return credist.GeneratePreset(preset)
	}
	if graphPath == "" || logPath == "" {
		return nil, fmt.Errorf("provide -preset, or both -graph and -log")
	}
	return credist.LoadDataset("custom", graphPath, logPath)
}
