package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"credist/internal/serve"
)

// runServe is the `credist serve` subcommand: learn a model once, then
// answer influence queries over HTTP until interrupted. SIGINT/SIGTERM
// drain in-flight requests before exiting.
func runServe(args []string) {
	fs := flag.NewFlagSet("credist serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8632", "listen address (host:port)")
		preset    = fs.String("preset", "", "serve a built-in dataset; one of: "+presetList())
		graphPath = fs.String("graph", "", "graph edge-list file (as written by datagen); requires -log")
		logPath   = fs.String("log", "", "action log file (as written by datagen); requires -graph")
		params    = fs.String("params", "", "optional saved model parameters (Model.SaveParams file); skips re-learning the time-aware rule")
		model     = fs.String("model", "", "optional binary model snapshot (credist learn -o / POST /snapshot file): skips learning and the full log scan, processing only log actions past the snapshot")
		mmap      = fs.Bool("mmap", false, "serve the UC base directly from the -model file via a read-only memory mapping: no parse, near-instant open, model may exceed RAM; answers stay bit-identical (version-3 snapshots; re-save older files to upgrade)")
		tail      = fs.String("tail", "", "optional action-tail file (as written by `datagen -stream`) appended to the log before the model binds; with -model, how a restart catches up past a checkpoint")
		lambda    = fs.Float64("lambda", 0.001, "CD truncation threshold (paper default 0.001; 0 keeps every credit); with -model, must match the stored value or be left unset")
		simple    = fs.Bool("simple-credit", false, "use the equal-split 1/d_in direct-credit rule instead of the learned time-aware rule (Eq. 9)")
		parts     = fs.Int("partitions", 0, "split the model into N influencer-row partitions behind a scatter-gather coordinator (0 serves the single-engine path; answers are bit-identical at every N); with -model, writes and reopens per-partition slice files named <model>.slice-<i>-of-<N>")
		warmK     = fs.Int("warm-k", 0, "precompute and cache the CELF selection for this k before accepting traffic (0 skips warmup)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: credist serve [flags]

Run the influence-query HTTP service: learn the credit-distribution model
from a dataset, hold it as an immutable snapshot, and answer concurrent
JSON queries. Endpoints:

  GET  /spread?seeds=1,2,3     sigma_cd of a seed set (POST {"seeds":[...]}
                               or {"sets":[[...],...]} for batches); add
                               &eps=0.1 and/or &budget=10ms for a bounded-
                               error, bounded-latency RR-tier estimate with
                               a 99%% confidence interval around the exact
                               value ({estimate, ci_low, ci_high, ...})
  GET  /gain?candidates=4,5    batched marginal gains, optional &seeds= base
  GET  /seeds?k=N              CELF seed selection, prefix-incremental: one
                               growable selection per snapshot; any k at or
                               below the largest computed (or restored from
                               -model / -warm-k) is a zero-work prefix slice;
                               add &eps=0.1 for RR coverage-greedy seeds with
                               an interval on the selected set's spread
  GET  /topk?method=highdeg&k=N  heuristic baseline seeds, CD-scored
  GET  /explain?seed=u&top=N   why-seed: u's marginal gain decomposed into
                               its top credit paths; ?set=1,2&reach=v is
                               why-reach: the credit the set pushes onto v,
                               split by seed (shares sum exactly to total)
  GET  /healthz                liveness
  GET  /stats                  snapshot shape, base/delta UC entries, QPS,
                               RR-sketch size, approximate-tier hits, and
                               provenance-index counters
  POST /reload                 learn from a new source and atomically swap,
                               e.g. {"preset":"flickr-small","lambda":0.001}
  POST /ingest                 append new propagations incrementally (only the
                               tail is scanned) and swap in the successor,
                               e.g. {"tuples":[{"user":1,"action":2200,"time":3}]}
                               or {"log":"data/flixster-small.tail.log"};
                               see also "credist ingest"
  POST /snapshot               checkpoint the current model as a binary
                               snapshot at a server-side path, e.g.
                               {"path":"data/model.bin"}; restart from it
                               with -model for a millisecond cold start

Examples:

  credist serve -preset flixster-small -addr :8632 -warm-k 50
  credist learn -graph d.graph -log d.log -o model.bin
  credist serve -graph d.graph -log d.log -model model.bin        # no relearn/rescan
  credist serve -graph d.graph -log d.log -model model.bin -mmap  # serve straight off the file
  credist serve -graph d.graph -log d.log -model model.bin -partitions 4 -mmap
                                  # scatter-gather over 4 mmap'd slice files

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	// With -model the snapshot's stored options are authoritative; only an
	// explicitly passed -lambda/-simple-credit should be checked against
	// them, not the flag defaults. Explicit zero values are rejected
	// outright: Options{Lambda: 0} is also the "adopt the stored options"
	// sentinel, so they could never be distinguished from unset and would
	// silently skip the mismatch check.
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *mmap && *model == "" {
		fmt.Fprintln(os.Stderr, "credist serve: -mmap needs -model (the mapping is the snapshot file)")
		os.Exit(1)
	}
	srcLambda, srcSimple := *lambda, *simple
	if *model != "" {
		if explicit["lambda"] && *lambda == 0 {
			fmt.Fprintln(os.Stderr, "credist serve: -lambda 0 with -model is indistinguishable from unset; omit -lambda (the snapshot's stored options are authoritative)")
			os.Exit(1)
		}
		if explicit["simple-credit"] && !*simple {
			fmt.Fprintln(os.Stderr, "credist serve: -simple-credit=false with -model is indistinguishable from unset; omit it (the snapshot's stored options are authoritative)")
			os.Exit(1)
		}
		if !explicit["lambda"] {
			srcLambda = 0
		}
		if !explicit["simple-credit"] {
			srcSimple = false
		}
	}
	if *parts < 0 {
		fmt.Fprintln(os.Stderr, "credist serve: -partitions must be non-negative")
		os.Exit(1)
	}
	src := serve.Source{
		Preset:       *preset,
		GraphPath:    *graphPath,
		LogPath:      *logPath,
		ParamsPath:   *params,
		ModelPath:    *model,
		Mmap:         *mmap,
		TailPath:     *tail,
		Lambda:       srcLambda,
		SimpleCredit: srcSimple,
		Partitions:   *parts,
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	start := time.Now()
	snap, err := serve.Build(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credist serve:", err)
		os.Exit(1)
	}
	// A degraded partitioned build would bind the port and answer 502 to
	// every query; at the CLI that is a startup failure, not a service.
	if err := snap.PartitionErr(); err != nil {
		fmt.Fprintln(os.Stderr, "credist serve:", err)
		os.Exit(1)
	}
	srv := serve.New(snap)
	srv.Logf = logger.Printf
	if *model != "" {
		logger.Printf("serve: cold-started %s from snapshot %s in %v: %d users, %d UC entries (%.1f MiB resident, %s row store: %.1f MiB heap + %.1f MiB file-backed), %d actions from the file + %d appended from the log",
			snap.Dataset().Name, *model, time.Since(start).Round(time.Millisecond),
			snap.NumUsers(), snap.Entries(), float64(snap.ResidentBytes())/(1<<20),
			snap.RowStoreBackend(), float64(snap.HeapBytes())/(1<<20), float64(snap.MappedBytes())/(1<<20),
			snap.ModelActions(), snap.TailActions())
	} else {
		logger.Printf("serve: learned %s in %v: %d users, %d UC entries (%.1f MiB resident)",
			snap.Dataset().Name, time.Since(start).Round(time.Millisecond),
			snap.NumUsers(), snap.Entries(), float64(snap.ResidentBytes())/(1<<20))
	}
	if snap.Partitioned() {
		logger.Printf("serve: scatter-gather over %d partitions (%s row store)",
			snap.NumPartitions(), snap.RowStoreBackend())
	}
	if *warmK > 0 {
		t := time.Now()
		res, err := srv.Warm(*warmK)
		if err != nil {
			// A failed warm-up must not be shrugged off: the operator asked
			// for a hot cache, so serving cold (or from a zero-valued
			// result) is a startup failure.
			fmt.Fprintln(os.Stderr, "credist serve: warm-up:", err)
			os.Exit(1)
		}
		logger.Printf("serve: warmed seed cache for k=%d (spread %.2f) in %v",
			*warmK, res.Spread, time.Since(t).Round(time.Millisecond))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("serve: listening on %s", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "credist serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Printf("serve: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "credist serve: shutdown:", err)
		os.Exit(1)
	}
}
