// Command datagen synthesizes a paper-shaped dataset and writes it to
// disk as a graph edge list plus an action log:
//
//	datagen -preset flixster-small -out ./data
//
// produces ./data/flixster-small.graph and ./data/flixster-small.log in
// the plain-text formats the credist CLI and library read back. With
// -stream, a fraction of the actions is held out into a third file,
// ./data/flixster-small.tail.log, ready to be streamed into a running
// service with `credist ingest` (or Model.Ingest).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"credist"
	"credist/internal/actionlog"
	"credist/internal/datagen"
)

func main() {
	presets := strings.Join(datagen.Names(), ", ")
	var (
		preset  = flag.String("preset", "flixster-small", "dataset preset to synthesize; one of: "+presets)
		out     = flag.String("out", ".", "output directory for the .graph and .log files (created if missing)")
		seed    = flag.Uint64("seed", 0, "override the preset's random seed for a different but equally-shaped dataset (0 keeps the preset's)")
		users   = flag.Int("users", 0, "override the preset's user count (0 keeps the preset's)")
		actions = flag.Int("actions", 0, "override the preset's action count (0 keeps the preset's)")
		stream  = flag.Float64("stream", 0, "hold out this fraction of the actions (by id, at least one) into <out>/<preset>.tail.log for streaming-ingest demos and benchmarks (0 disables; must be < 1)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `Usage: datagen [flags]

Synthesize a paper-shaped dataset and write it as <out>/<preset>.graph
(edge list) plus <out>/<preset>.log (action log), the formats the credist
CLI, credist serve, and the library read back:

  datagen -preset flixster-small -out ./data
  datagen -preset flickr-large -users 10000 -seed 7 -out ./data

With -stream, the last fraction of the actions is held out of the log
into <out>/<preset>.tail.log, so a service started on the head can be
grown incrementally:

  datagen -preset flixster-small -stream 0.05 -out ./data
  credist serve -graph ./data/flixster-small.graph -log ./data/flixster-small.log &
  credist ingest -tail ./data/flixster-small.tail.log

Presets: %s

Flags:
`, presets)
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg, ok := datagen.PresetByName(*preset)
	if !ok {
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q (valid presets: %s)\n", *preset, presets)
		os.Exit(1)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *users != 0 {
		cfg.NumUsers = *users
	}
	if *actions != 0 {
		cfg.NumActions = *actions
	}

	if *stream < 0 || *stream >= 1 {
		fmt.Fprintf(os.Stderr, "datagen: -stream must be in [0, 1), got %g\n", *stream)
		os.Exit(1)
	}

	ds := credist.Generate(cfg)
	st := ds.Stats()
	fmt.Printf("%s: %d users, %d edges, %d propagations, %d tuples (mean size %.1f)\n",
		ds.Name, ds.NumUsers(), ds.Graph.NumEdges(), st.NumActions, st.NumTuples, st.MeanSize)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	// With -stream, the written log is the head; the tail actions go to a
	// separate tuple file with their original (continuing) action ids, so
	// appending the tail to the head reproduces the full log exactly.
	var tail []actionlog.Tuple
	full := ds.Log
	if *stream > 0 {
		tailN := int(float64(full.NumActions()) * *stream)
		if tailN < 1 {
			tailN = 1
		}
		headN := full.NumActions() - tailN
		for a := headN; a < full.NumActions(); a++ {
			tail = append(tail, full.Action(credist.ActionID(a))...)
		}
		ds = &credist.Dataset{Name: ds.Name, Graph: ds.Graph, Log: full.Prefix(headN)}
	}

	graphPath := filepath.Join(*out, cfg.Name+".graph")
	logPath := filepath.Join(*out, cfg.Name+".log")
	if err := credist.SaveDataset(ds, graphPath, logPath); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if tail == nil {
		fmt.Printf("wrote %s and %s\n", graphPath, logPath)
		return
	}

	tailPath := filepath.Join(*out, cfg.Name+".tail.log")
	tf, err := os.Create(tailPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := actionlog.WriteTuples(tf, full.NumUsers(), tail); err != nil {
		tf.Close()
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := tf.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s and %s (head: %d actions) + %s (tail: %d actions, %d tuples)\n",
		graphPath, logPath, ds.Log.NumActions(), tailPath,
		full.NumActions()-ds.Log.NumActions(), len(tail))
}
