// Command datagen synthesizes a paper-shaped dataset and writes it to
// disk as a graph edge list plus an action log:
//
//	datagen -preset flixster-small -out ./data
//
// produces ./data/flixster-small.graph and ./data/flixster-small.log in
// the plain-text formats the credist CLI and library read back.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"credist"
	"credist/internal/datagen"
)

func main() {
	presets := strings.Join(datagen.Names(), ", ")
	var (
		preset  = flag.String("preset", "flixster-small", "dataset preset to synthesize; one of: "+presets)
		out     = flag.String("out", ".", "output directory for the .graph and .log files (created if missing)")
		seed    = flag.Uint64("seed", 0, "override the preset's random seed for a different but equally-shaped dataset (0 keeps the preset's)")
		users   = flag.Int("users", 0, "override the preset's user count (0 keeps the preset's)")
		actions = flag.Int("actions", 0, "override the preset's action count (0 keeps the preset's)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `Usage: datagen [flags]

Synthesize a paper-shaped dataset and write it as <out>/<preset>.graph
(edge list) plus <out>/<preset>.log (action log), the formats the credist
CLI, credist serve, and the library read back:

  datagen -preset flixster-small -out ./data
  datagen -preset flickr-large -users 10000 -seed 7 -out ./data

Presets: %s

Flags:
`, presets)
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg, ok := datagen.PresetByName(*preset)
	if !ok {
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q (valid presets: %s)\n", *preset, presets)
		os.Exit(1)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *users != 0 {
		cfg.NumUsers = *users
	}
	if *actions != 0 {
		cfg.NumActions = *actions
	}

	ds := credist.Generate(cfg)
	st := ds.Stats()
	fmt.Printf("%s: %d users, %d edges, %d propagations, %d tuples (mean size %.1f)\n",
		ds.Name, ds.NumUsers(), ds.Graph.NumEdges(), st.NumActions, st.NumTuples, st.MeanSize)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	graphPath := filepath.Join(*out, cfg.Name+".graph")
	logPath := filepath.Join(*out, cfg.Name+".log")
	if err := credist.SaveDataset(ds, graphPath, logPath); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s and %s\n", graphPath, logPath)
}
