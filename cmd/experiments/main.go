// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the synthetic paper-shaped datasets. Each
// experiment id matches the index in DESIGN.md §3:
//
//	experiments -exp table1
//	experiments -exp fig3 -dataset flickr-small
//	experiments -exp table4 -k 50
//	experiments -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"credist/internal/datagen"
	"credist/internal/eval"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: table1, table2, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table4, noise, learners, topology, objectives, or all")
		dataset = flag.String("dataset", "", "dataset preset (default depends on experiment)")
		k       = flag.Int("k", 50, "seed set size")
		trials  = flag.Int("trials", 1000, "Monte-Carlo trials for IC/LT (paper: 10000)")
		lambda  = flag.Float64("lambda", 0.001, "CD truncation threshold")
		seed    = flag.Uint64("seed", 1, "random seed for assignments and simulations")
		format  = flag.String("format", "text", "output format: text or csv (csv supported for fig2-fig4, fig6-fig9, table2, table4)")
		workers = flag.Int("workers", 0, "CD scan/CELF worker fan-out (0 = GOMAXPROCS); results are bit-identical at any value, matching serve's /seeds")
		window  = flag.Float64("window", 30, "objectives experiment: time window tau_c in action-log units")
		budget  = flag.Float64("budget", 5, "objectives experiment: total seeding budget in cost units")
	)
	flag.Parse()

	objWindow, objBudget = *window, *budget
	opts := eval.ExpOptions{K: *k, Trials: *trials, Lambda: *lambda, Seed: *seed, Workers: *workers}
	if err := run(*exp, *dataset, *format, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp, dataset, format string, opts eval.ExpOptions) error {
	out := os.Stdout
	csv := format == "csv"
	smallEnvs := func() []*eval.Env {
		if dataset != "" {
			return []*eval.Env{envFor(dataset)}
		}
		return []*eval.Env{envFor("flixster-small"), envFor("flickr-small")}
	}
	largeEnvs := func() []*eval.Env {
		if dataset != "" {
			return []*eval.Env{envFor(dataset)}
		}
		return []*eval.Env{envFor("flixster-large"), envFor("flickr-large")}
	}

	textOut := func() *os.File {
		if csv {
			return nil // drivers write to io.Discard, CSV to stdout
		}
		return out
	}
	driverOut := func() io.Writer {
		if csv {
			return io.Discard
		}
		return out
	}

	switch exp {
	case "table1":
		eval.Table1(out, datagen.Presets())
	case "table2":
		for _, env := range smallEnvs() {
			sets := eval.Table2(driverOut(), env, opts)
			if csv {
				if err := eval.WriteIntersectionCSV(out, sets); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "fig2":
		for _, env := range smallEnvs() {
			reports := eval.Figure2(driverOut(), env, opts)
			if csv {
				if err := eval.WritePredictionCSV(out, reports); err != nil {
					return err
				}
				if err := eval.WriteScatterCSV(out, reports); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "fig3":
		for _, env := range smallEnvs() {
			reports := eval.Figure3(driverOut(), env, opts)
			if csv {
				if err := eval.WritePredictionCSV(out, reports); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "fig4":
		for _, env := range smallEnvs() {
			reports := eval.Figure4(driverOut(), env, opts)
			if csv {
				if err := eval.WriteCaptureCSV(out, reports); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "fig5":
		for _, env := range smallEnvs() {
			sets := eval.Figure5(driverOut(), env, opts)
			if csv {
				if err := eval.WriteIntersectionCSV(out, sets); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "fig6":
		for _, env := range smallEnvs() {
			curves := eval.Figure6(driverOut(), env, opts)
			if csv {
				if err := eval.WriteSpreadCurvesCSV(out, curves); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "fig7":
		// MC greedy is the bottleneck; the paper's point is the gap, which
		// survives reduced k and trials.
		runtimeOpts := opts
		if runtimeOpts.K > 10 {
			runtimeOpts.K = 10
		}
		if runtimeOpts.Trials > 200 {
			runtimeOpts.Trials = 200
		}
		for _, env := range smallEnvs() {
			series := eval.Figure7(driverOut(), env, runtimeOpts)
			if csv {
				if err := eval.WriteRuntimeCSV(out, series); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "fig8", "fig9":
		for _, env := range largeEnvs() {
			points := eval.Scalability(driverOut(), env, nil, opts)
			if csv {
				if err := eval.WriteScalabilityCSV(out, points); err != nil {
					return err
				}
			}
			sep(textOut())
		}
	case "table4":
		// The paper reports Table 4 on Flixster_Large only.
		points := eval.Table4(driverOut(), largeEnvs()[0], nil, opts)
		if csv {
			return eval.WriteTruncationCSV(out, points)
		}
	case "noise":
		for _, env := range smallEnvs() {
			eval.NoiseRobustness(out, env, nil, opts)
			sep(textOut())
		}
	case "learners":
		for _, env := range smallEnvs() {
			eval.LearnerComparison(out, env, opts)
			sep(textOut())
		}
	case "topology":
		base, ok := datagen.PresetByName("flixster-small")
		if dataset != "" {
			base, ok = datagen.PresetByName(dataset)
		}
		if !ok {
			return fmt.Errorf("unknown preset")
		}
		base.NumUsers /= 2 // three full runs; keep it brisk
		base.NumActions /= 2
		eval.TopologyRobustness(out, base, opts)
	case "objectives":
		names := []string{"flixster-small", "flickr-small"}
		if dataset != "" {
			names = []string{dataset}
		}
		for _, name := range names {
			if err := objectivesDemo(out, name, opts); err != nil {
				return err
			}
			sep(textOut())
		}
	case "all":
		ids := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "table4", "noise", "learners", "topology",
			"objectives"}
		for _, id := range ids {
			fmt.Fprintf(out, "===== %s =====\n", id)
			if err := run(id, dataset, format, opts); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func sep(out *os.File) {
	if out != nil {
		fmt.Fprintln(out)
	}
}

var envCache = map[string]*eval.Env{}

func envFor(preset string) *eval.Env {
	if env, ok := envCache[preset]; ok {
		return env
	}
	cfg, ok := datagen.PresetByName(preset)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown preset %q\n", preset)
		os.Exit(1)
	}
	env := eval.MakeEnv(cfg)
	envCache[preset] = env
	return env
}
