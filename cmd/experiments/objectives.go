package main

import (
	"fmt"
	"io"

	"credist"
	"credist/internal/eval"
)

// objWindow and objBudget are the -window and -budget flag values; only
// the objectives experiment reads them.
var objWindow, objBudget float64

// objectivesDemo contrasts the campaign objectives against the paper's
// global-spread selection on one preset: the same learned model answers
// targeted, time-windowed, budgeted, and rival-blocked campaigns, and
// the table shows how far each scenario's seed set drifts from the
// global one. Every scenario is deterministic — same preset, same
// flags, same table, at any worker or partition count.
func objectivesDemo(out io.Writer, preset string, opts eval.ExpOptions) error {
	ds, err := credist.GeneratePreset(preset)
	if err != nil {
		return err
	}
	model := credist.Learn(ds, credist.Options{Lambda: opts.Lambda})
	k := opts.K
	if k > 10 {
		k = 10 // five selections per preset; keep the experiment brisk
	}

	globalSeeds, _ := model.SelectSeeds(k)
	global := map[credist.NodeID]bool{}
	for _, s := range globalSeeds {
		global[s] = true
	}

	// Audience: the most influenceable third of the universe — the users
	// a targeted campaign would actually pay for.
	audience := topInfluenceable(model, ds.NumUsers(), ds.NumUsers()/3)

	// Costs: the global selection's top seeds are the expensive
	// celebrities (cost 3), everyone else costs 1.
	costs := make([]float64, ds.NumUsers())
	for i := range costs {
		costs[i] = 1
	}
	for _, s := range globalSeeds {
		costs[s] = 3
	}

	scenarios := []struct {
		name string
		obj  *credist.Objective
	}{
		{"global", nil},
		{"targeted", &credist.Objective{Audience: audience}},
		{"windowed", &credist.Objective{Windowed: true, Window: objWindow}},
		{"budgeted", &credist.Objective{Costs: costs, Budget: objBudget}},
		{"blocked", &credist.Objective{Blocked: globalSeeds[:min(2, len(globalSeeds))]}},
	}

	fmt.Fprintf(out, "Campaign objectives on %s (k=%d, lambda=%g, window=%g, budget=%g)\n",
		ds.Name, k, opts.Lambda, objWindow, objBudget)
	fmt.Fprintf(out, "%-10s %6s %10s %12s %10s\n", "scenario", "seeds", "cost", "sigma_obj", "overlap")
	for _, sc := range scenarios {
		var seeds []credist.NodeID
		if sc.obj == nil {
			seeds = globalSeeds
		} else {
			res, err := model.SelectSeedsObj(k, sc.obj)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", ds.Name, sc.name, err)
			}
			seeds = res.Seeds
		}
		totalCost := float64(len(seeds))
		if sc.obj != nil && sc.obj.Costs != nil {
			totalCost = 0
			for _, s := range seeds {
				totalCost += sc.obj.Costs[s]
			}
		}
		spread, err := scoreObjective(model, seeds, sc.obj)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", ds.Name, sc.name, err)
		}
		overlap := 0
		for _, s := range seeds {
			if global[s] {
				overlap++
			}
		}
		fmt.Fprintf(out, "%-10s %6d %10.1f %12.2f %7d/%d\n",
			sc.name, len(seeds), totalCost, spread, overlap, k)
	}
	return nil
}

// topInfluenceable returns the n users the model rates easiest to
// influence, in id order (a deterministic audience).
func topInfluenceable(model *credist.Model, numUsers, n int) []credist.NodeID {
	type scored struct {
		id    credist.NodeID
		score float64
	}
	all := make([]scored, numUsers)
	for u := 0; u < numUsers; u++ {
		all[u] = scored{credist.NodeID(u), model.Influenceability(credist.NodeID(u))}
	}
	// Selection by nth-element would do; n is small, sort is clearer.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < numUsers; j++ {
			if all[j].score > all[best].score ||
				(all[j].score == all[best].score && all[j].id < all[best].id) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	ids := make([]credist.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = all[i].id
	}
	// Restore id order so the audience reads as a set, not a ranking.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// scoreObjective evaluates a seed set under the objective's evaluation
// half (costs and budget shape selection, not scoring).
func scoreObjective(model *credist.Model, seeds []credist.NodeID, obj *credist.Objective) (float64, error) {
	if obj == nil {
		return model.Spread(seeds), nil
	}
	eval := *obj
	eval.Costs, eval.Budget = nil, 0
	return model.SpreadObj(seeds, &eval)
}
