package credist

import (
	"path/filepath"
	"testing"
)

// TestSeedPrefixSaveLoadCycle pins the facade half of the
// prefix-incremental story: a selection recorded on a model survives
// Save/LoadModel bit-exact, a selection resumed from the restored prefix
// continues bit-identically to a from-scratch run, and a load that
// appends a log tail drops the now-stale prefix instead of serving seeds
// the grown model never chose.
func TestSeedPrefixSaveLoadCycle(t *testing.T) {
	ds := Generate(tinyConfig(29))
	model := Learn(ds, Options{Lambda: 0.001})
	res := model.Selection(6)
	model.RecordSeedPrefix(res)
	if p := model.SeedPrefix(); p == nil || len(p.Seeds) != 6 {
		t.Fatalf("RecordSeedPrefix did not attach: %+v", model.SeedPrefix())
	}

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadModel(ds, path, Options{})
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	p := loaded.SeedPrefix()
	if p == nil {
		t.Fatal("prefix did not survive Save/LoadModel")
	}
	for i := range res.Seeds {
		if p.Seeds[i] != res.Seeds[i] || p.Gains[i] != res.Gains[i] || p.LookupsAt[i] != res.LookupsAt[i] {
			t.Fatalf("restored prefix diverged at %d: (%d, %b, %d) vs (%d, %b, %d)", i,
				p.Seeds[i], p.Gains[i], p.LookupsAt[i], res.Seeds[i], res.Gains[i], res.LookupsAt[i])
		}
	}

	// Resuming the restored prefix and growing continues the selection
	// exactly where a from-scratch run would be.
	sel, err := loaded.ResumeSelection(p)
	if err != nil {
		t.Fatalf("ResumeSelection: %v", err)
	}
	grown := sel.Grow(10)
	want := model.Selection(10)
	if len(grown.Seeds) != len(want.Seeds) {
		t.Fatalf("resumed growth selected %d seeds, want %d", len(grown.Seeds), len(want.Seeds))
	}
	for i := range want.Seeds {
		if grown.Seeds[i] != want.Seeds[i] || grown.Gains[i] != want.Gains[i] {
			t.Fatalf("resumed growth diverged at %d: (%d, %b) vs (%d, %b)", i,
				grown.Seeds[i], grown.Gains[i], want.Seeds[i], want.Gains[i])
		}
	}

	// Resuming a prefix on a planner with committed seeds is rejected: the
	// prefix describes a selection from an empty seed set, and replaying
	// it on top of foreign seeds would silently double-commit overlaps.
	dirty := loaded.NewPlanner()
	dirty.Add(p.Seeds[0])
	if _, err := dirty.ResumeSelection(p); err == nil {
		t.Fatal("ResumeSelection on a planner with committed seeds accepted")
	}

	// A load against a grown log (snapshot + appended tail) must drop the
	// prefix: the appended actions change every marginal gain.
	headN := ds.Log.NumActions() - 5
	headDS := &Dataset{Name: ds.Name, Graph: ds.Graph, Log: ds.Log.Prefix(headN)}
	headModel := Learn(headDS, Options{Lambda: 0.001})
	headModel.RecordSeedPrefix(headModel.Selection(4))
	headPath := filepath.Join(t.TempDir(), "head.bin")
	if err := headModel.Save(headPath); err != nil {
		t.Fatalf("Save head: %v", err)
	}
	grownModel, err := LoadModel(ds, headPath, Options{})
	if err != nil {
		t.Fatalf("LoadModel with tail: %v", err)
	}
	if grownModel.SeedPrefix() != nil {
		t.Fatal("stale prefix survived a tail-appending load")
	}
}
