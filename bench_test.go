package credist

// One benchmark per table and figure of the paper's evaluation section
// (DESIGN.md §3 maps ids to drivers), plus ablation benches for the design
// choices DESIGN.md calls out. The benches run the same drivers as
// cmd/experiments but on reduced-scale datasets so `go test -bench=.`
// finishes in minutes; cmd/experiments runs the full presets.
//
// Benchmarks report domain metrics via b.ReportMetric (spread, RMSE,
// overlap) so EXPERIMENTS.md can quote paper-vs-measured shapes directly
// from bench output.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"credist/internal/cascade"
	"credist/internal/celf"
	"credist/internal/core"
	"credist/internal/datagen"
	"credist/internal/eval"
	"credist/internal/probs"
	"credist/internal/ris"
	"credist/internal/seedsel"
)

// benchFlixster/benchFlickr are reduced-scale versions of the presets used
// by the per-figure benches.
func benchFlixsterCfg() datagen.Config {
	cfg := datagen.FlixsterSmall()
	cfg.NumUsers = 1500
	cfg.NumActions = 1100
	return cfg
}

func benchFlickrCfg() datagen.Config {
	cfg := datagen.FlickrSmall()
	cfg.NumUsers = 1500
	cfg.NumActions = 1100
	return cfg
}

func benchLargeCfg() datagen.Config {
	cfg := datagen.FlixsterLarge()
	cfg.NumUsers = 12000
	cfg.NumActions = 3000
	return cfg
}

var (
	benchFlixsterEnv = sync.OnceValue(func() *eval.Env { return eval.MakeEnv(benchFlixsterCfg()) })
	benchFlickrEnv   = sync.OnceValue(func() *eval.Env { return eval.MakeEnv(benchFlickrCfg()) })
	benchLargeEnv    = sync.OnceValue(func() *eval.Env { return eval.MakeEnv(benchLargeCfg()) })
)

// benchOpts are the shared reduced-scale experiment options.
var benchOpts = eval.ExpOptions{K: 25, Trials: 200, Lambda: 0.001, Seed: 1}

func BenchmarkTable1DatasetStats(b *testing.B) {
	cfgs := []datagen.Config{benchFlixsterCfg(), benchFlickrCfg()}
	for i := 0; i < b.N; i++ {
		stats := eval.Table1(io.Discard, cfgs)
		b.ReportMetric(float64(stats[0].NumTuples), "flixster-tuples")
		b.ReportMetric(float64(stats[1].NumTuples), "flickr-tuples")
	}
}

func BenchmarkTable2SeedIntersection(b *testing.B) {
	env := benchFlixsterEnv()
	for i := 0; i < b.N; i++ {
		sets := eval.Table2(io.Discard, env, benchOpts)
		// The paper's headline: EM vs ad-hoc methods is near-disjoint while
		// EM vs its perturbed version stays large.
		m := sets.Matrix()
		b.ReportMetric(float64(m[3][4]), "EM∩PT")
		b.ReportMetric(float64(m[0][3]), "UN∩EM")
	}
}

func BenchmarkFigure2SpreadPredictionError(b *testing.B) {
	env := benchFlixsterEnv()
	for i := 0; i < b.N; i++ {
		reports := eval.Figure2(io.Discard, env, benchOpts)
		for _, r := range reports {
			if r.Method == "EM" {
				b.ReportMetric(r.OverallRMSE, "EM-rmse")
			}
			if r.Method == "UN" {
				b.ReportMetric(r.OverallRMSE, "UN-rmse")
			}
		}
	}
}

func BenchmarkFigure3ModelRMSE(b *testing.B) {
	env := benchFlixsterEnv()
	for i := 0; i < b.N; i++ {
		reports := eval.Figure3(io.Discard, env, benchOpts)
		for _, r := range reports {
			b.ReportMetric(r.OverallRMSE, r.Method+"-rmse")
		}
	}
}

func BenchmarkFigure4CaptureRatio(b *testing.B) {
	env := benchFlickrEnv()
	for i := 0; i < b.N; i++ {
		reports := eval.Figure4(io.Discard, env, benchOpts)
		for _, r := range reports {
			// Capture ratio at the mid-grid error budget.
			mid := r.Capture[len(r.Capture)/2]
			b.ReportMetric(mid.Ratio, r.Method+"-capture")
		}
	}
}

func BenchmarkFigure5ModelSeedIntersection(b *testing.B) {
	env := benchFlixsterEnv()
	for i := 0; i < b.N; i++ {
		sets := eval.Figure5(io.Discard, env, benchOpts)
		m := sets.Matrix()
		b.ReportMetric(float64(m[0][2]), "IC∩CD")
		b.ReportMetric(float64(m[1][2]), "LT∩CD")
	}
}

func BenchmarkFigure6SpreadAchieved(b *testing.B) {
	env := benchFlixsterEnv()
	for i := 0; i < b.N; i++ {
		curves := eval.Figure6(io.Discard, env, benchOpts)
		for _, c := range curves {
			b.ReportMetric(c.Spread[len(c.Spread)-1], c.Method+"-spread")
		}
	}
}

func BenchmarkFigure7RunningTime(b *testing.B) {
	env := benchFlixsterEnv()
	opts := benchOpts
	opts.K = 5
	opts.Trials = 100
	for i := 0; i < b.N; i++ {
		series := eval.Figure7(io.Discard, env, opts)
		var ic, cd float64
		for _, s := range series {
			total := float64(s.Elapsed[len(s.Elapsed)-1].Milliseconds())
			switch s.Method {
			case "IC":
				ic = total
			case "CD":
				cd = total
			}
			b.ReportMetric(total, s.Method+"-ms")
		}
		if cd > 0 {
			b.ReportMetric(ic/cd, "IC/CD-speedup")
		}
	}
}

func BenchmarkFigure8Scalability(b *testing.B) {
	env := benchLargeEnv()
	for i := 0; i < b.N; i++ {
		points := eval.Scalability(io.Discard, env, []float64{0.25, 0.5, 1.0}, benchOpts)
		last := points[len(points)-1]
		b.ReportMetric(float64(last.Tuples), "tuples")
		b.ReportMetric(float64(last.Runtime.Milliseconds()), "runtime-ms")
		b.ReportMetric(float64(last.UCEntries), "uc-entries")
	}
}

func BenchmarkFigure9TrainingSize(b *testing.B) {
	env := benchLargeEnv()
	for i := 0; i < b.N; i++ {
		points := eval.Scalability(io.Discard, env, []float64{0.1, 0.5, 1.0}, benchOpts)
		// Convergence: spread at half the data vs all of it.
		b.ReportMetric(points[1].Spread, "spread@50%")
		b.ReportMetric(points[2].Spread, "spread@100%")
		b.ReportMetric(float64(points[1].TrueSeeds), "true-seeds@50%")
	}
}

func BenchmarkTable4Truncation(b *testing.B) {
	env := benchLargeEnv()
	for i := 0; i < b.N; i++ {
		points := eval.Table4(io.Discard, env, []float64{0.01, 0.001, 0.0001}, benchOpts)
		b.ReportMetric(points[0].Spread, "spread@0.01")
		b.ReportMetric(points[len(points)-1].Spread, "spread@1e-4")
		b.ReportMetric(float64(points[0].UCEntries), "entries@0.01")
		b.ReportMetric(float64(points[len(points)-1].UCEntries), "entries@1e-4")
	}
}

// --- ablations -------------------------------------------------------------

// BenchmarkAblationCELFvsGreedy quantifies the lazy-forward optimization:
// same seeds, far fewer marginal-gain evaluations.
func BenchmarkAblationCELFvsGreedy(b *testing.B) {
	env := benchFlixsterEnv()
	credit := core.LearnTimeAware(env.Graph, env.Train)
	for i := 0; i < b.N; i++ {
		eng1 := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
		celf := seedsel.CELF(eng1, 10)
		eng2 := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
		greedy := seedsel.Greedy(eng2, 10)
		b.ReportMetric(float64(celf.Lookups), "celf-lookups")
		b.ReportMetric(float64(greedy.Lookups), "greedy-lookups")
	}
}

// BenchmarkAblationDirectCredit compares the simple 1/d_in rule against
// the time-aware Eq. (9) rule on engine size and selected spread.
func BenchmarkAblationDirectCredit(b *testing.B) {
	env := benchFlixsterEnv()
	ta := core.LearnTimeAware(env.Graph, env.Train)
	scorer := core.NewEvaluator(env.Graph, env.Train, ta)
	for i := 0; i < b.N; i++ {
		simple := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001})
		sRes := seedsel.CELF(simple, 10)
		timeAware := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: ta})
		tRes := seedsel.CELF(timeAware, 10)
		b.ReportMetric(scorer.Spread(sRes.Seeds), "simple-spread")
		b.ReportMetric(scorer.Spread(tRes.Seeds), "timeaware-spread")
		b.ReportMetric(float64(simple.Entries()), "simple-entries")
		b.ReportMetric(float64(timeAware.Entries()), "timeaware-entries")
	}
}

// --- micro-benchmarks on the core machinery --------------------------------

func BenchmarkScan(b *testing.B) {
	env := benchFlixsterEnv()
	credit := core.LearnTimeAware(env.Graph, env.Train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
	}
}

func BenchmarkEngineGain(b *testing.B) {
	env := benchFlixsterEnv()
	credit := core.LearnTimeAware(env.Graph, env.Train)
	engine := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Gain(NodeID(i % env.Graph.NumNodes()))
	}
}

func BenchmarkEvaluatorSpread(b *testing.B) {
	env := benchFlixsterEnv()
	ev := core.NewEvaluator(env.Graph, env.Train, nil)
	seeds := []NodeID{0, 5, 10, 15, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Spread(seeds)
	}
}

func BenchmarkMCSimulationIC(b *testing.B) {
	env := benchFlixsterEnv()
	w := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{MaxIter: 5})
	mc := cascade.NewMCEstimator(w, cascade.IC, cascade.MCOptions{Trials: 100, Seed: 1})
	seeds := []NodeID{0, 5, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Spread(seeds)
	}
}

func BenchmarkMCSimulationLT(b *testing.B) {
	env := benchFlixsterEnv()
	w := probs.LearnLTWeights(env.Graph, env.Train)
	mc := cascade.NewMCEstimator(w, cascade.LT, cascade.MCOptions{Trials: 100, Seed: 1})
	seeds := []NodeID{0, 5, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Spread(seeds)
	}
}

func BenchmarkEMLearning(b *testing.B) {
	env := benchFlixsterEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{MaxIter: 10})
	}
}

func BenchmarkTimeAwareLearning(b *testing.B) {
	env := benchFlixsterEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LearnTimeAware(env.Graph, env.Train)
	}
}

// BenchmarkNoiseRobustness sweeps perturbation noise over the EM-learned
// probabilities and reports how many seeds survive at 20% (the paper's PT
// setting) and 80%.
func BenchmarkNoiseRobustness(b *testing.B) {
	env := benchFlixsterEnv()
	for i := 0; i < b.N; i++ {
		points := eval.NoiseRobustness(io.Discard, env, []float64{0.2, 0.8}, benchOpts)
		b.ReportMetric(float64(points[0].Overlap), "overlap@20%")
		b.ReportMetric(float64(points[1].Overlap), "overlap@80%")
	}
}

// BenchmarkLearnerComparison scores seed sets from every trace-based
// probability learner under the CD evaluator.
func BenchmarkLearnerComparison(b *testing.B) {
	env := benchFlickrEnv()
	for i := 0; i < b.N; i++ {
		points := eval.LearnerComparison(io.Discard, env, benchOpts)
		for _, p := range points {
			b.ReportMetric(p.Spread, p.Method+"-spread")
		}
	}
}

// BenchmarkAblationRISvsCD contrasts the post-paper RIS algorithm with the
// CD engine: seeds from each, cross-scored by the CD evaluator and by RIS
// sampling, plus wall-clock per method.
func BenchmarkAblationRISvsCD(b *testing.B) {
	env := benchFlixsterEnv()
	emW := probs.LearnEMIC(env.Graph, env.Train, probs.EMOptions{MaxIter: 5})
	credit := core.LearnTimeAware(env.Graph, env.Train)
	scorer := core.NewEvaluator(env.Graph, env.Train, credit)
	for i := 0; i < b.N; i++ {
		col := ris.Collect(ris.NewSampler(emW, cascade.IC), 30000, 1)
		risSeeds, _ := col.SelectSeeds(10)
		cd := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
		cdRes := seedsel.CELF(cd, 10)
		b.ReportMetric(scorer.Spread(risSeeds), "ris-cdspread")
		b.ReportMetric(scorer.Spread(cdRes.Seeds), "cd-cdspread")
		b.ReportMetric(col.EstimateSpread(risSeeds), "ris-icspread")
		b.ReportMetric(col.EstimateSpread(cdRes.Seeds), "cd-icspread")
	}
}

// BenchmarkParallelScan measures the engine-construction speedup from the
// sharded scan.
func BenchmarkParallelScan(b *testing.B) {
	env := benchFlixsterEnv()
	credit := core.LearnTimeAware(env.Graph, env.Train)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit, Workers: 1})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
		}
	})
}

// BenchmarkCompactEngine contrasts the engine's sorted sparse-row UC
// layout with the flattened CompactEngine ablation on construction time,
// selection time, and resident memory. Entries are equal by construction.
// (The map-of-maps layout that both engines replaced measured 8.28
// resident-MiB on this configuration — ~81 bytes per entry across the
// mirrored hash tables — versus 6.01 MiB for the sorted rows and 4.00
// MiB for the flattened layout's permutation-indexed slices.)
func BenchmarkCompactEngine(b *testing.B) {
	env := benchFlixsterEnv()
	credit := core.LearnTimeAware(env.Graph, env.Train)
	b.Run("sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
			res := seedsel.CELF(e, 10)
			b.ReportMetric(float64(e.Entries()), "entries")
			b.ReportMetric(float64(e.ResidentBytes())/(1<<20), "resident-MiB")
			b.ReportMetric(res.Spread(), "spread")
		}
	})
	b.Run("compact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewCompactEngine(env.Graph, env.Train, core.Options{Lambda: 0.001, Credit: credit})
			res := seedsel.CELF(e, 10)
			b.ReportMetric(float64(e.Entries()), "entries")
			b.ReportMetric(float64(e.ResidentBytes())/(1<<20), "resident-MiB")
			b.ReportMetric(res.Spread(), "spread")
		}
	})
}

// BenchmarkAppendVsRescan is the streaming-ingest headline: extending an
// engine with a 5% held-out action tail (Clone sharing the frozen base +
// AppendActions scanning only the tail) versus the full rescan a naive
// reload pays, on the flixster-small preset. The incremental path is
// required to be >= 10x faster (ISSUE 3 acceptance); the parent benchmark
// reports the measured one-shot speedup, the sub-benchmarks give the
// steady-state ns/op.
func BenchmarkAppendVsRescan(b *testing.B) {
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		b.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	credit := core.LearnTimeAware(full.Graph, full.Log)
	opts := core.Options{Lambda: 0.001, Credit: credit}
	n := full.Log.NumActions()
	headN := n - n/20 // hold out 5%
	headLog := full.Log.Prefix(headN)
	base := core.NewEngine(full.Graph, headLog, opts)
	base.Compact()

	appendOnce := func(b *testing.B) *core.Engine {
		e := base.Clone()
		if err := e.AppendActions(full.Graph, full.Log, ActionID(headN)); err != nil {
			b.Fatal(err)
		}
		return e
	}

	// One-shot speedup in its own sub-benchmark, so a single -benchtime=1x
	// run (the CI smoke step) still reports the ratio.
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			inc := appendOnce(b)
			appendMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			t0 = time.Now()
			rescan := core.NewEngine(full.Graph, full.Log, opts)
			rescanMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			if inc.Entries() != rescan.Entries() {
				b.Fatalf("append entries %d != rescan entries %d", inc.Entries(), rescan.Entries())
			}
			b.ReportMetric(appendMs, "append-ms")
			b.ReportMetric(rescanMs, "rescan-ms")
			b.ReportMetric(rescanMs/appendMs, "speedup")
		}
	})
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			appendOnce(b)
		}
	})
	b.Run("rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NewEngine(full.Graph, full.Log, opts)
		}
	})
}

// BenchmarkColdStart is the durable-snapshot headline (ISSUE 4
// acceptance): restarting from a binary model snapshot versus the full
// rescan a naive restart pays, on the flixster-small preset. The rescan
// reference restores the same frozen parameters from the text format
// (the pre-snapshot state of the art, serve -params) and scans the whole
// log — re-learning would be a different model, not a restart. Two
// snapshot scenarios are measured:
//
//   - "speedup": the snapshot covers the entire log (a server
//     checkpointed via POST /snapshot and restarted) — pure load, no
//     scanning. Required to be at least 10x faster than the rescan.
//   - "speedup-stale": the snapshot covers 95% and the load appends the
//     5% tail that arrived after the checkpoint.
//
// The out-of-core variants measure the version-3 mapped open against the
// heap parse of the same file (ISSUE 6 acceptance: the mapped open beats
// the heap load by >= 5x — it touches no cells, only the header):
//
//   - "speedup-mmap": one-shot mapped open vs heap load of the full
//     snapshot, reporting both and the ratio.
//   - "mmap-open": steady-state ns/op of the mapped open alone.
//
// Each speedup case runs one-shot inside the loop so the CI
// -benchtime=1x smoke still reports the ratios.
func BenchmarkColdStart(b *testing.B) {
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		b.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	n := full.Log.NumActions()
	headN := n - n/20
	headDS := &Dataset{Name: full.Name, Graph: full.Graph, Log: full.Log.Prefix(headN)}
	opts := Options{Lambda: 0.001}
	var tail []Tuple
	for a := headN; a < n; a++ {
		tail = append(tail, full.Log.Action(ActionID(a))...)
	}

	dir := b.TempDir()
	fullPath := filepath.Join(dir, "model-full.bin")
	stalePath := filepath.Join(dir, "model-head.bin")
	paramsPath := filepath.Join(dir, "params.txt")
	head := Learn(headDS, opts)
	if err := head.Save(stalePath); err != nil {
		b.Fatal(err)
	}
	if err := head.SaveParams(paramsPath); err != nil {
		b.Fatal(err)
	}
	grown, err := head.Ingest(tail)
	if err != nil {
		b.Fatal(err)
	}
	if err := grown.Save(fullPath); err != nil {
		b.Fatal(err)
	}
	combined := &Dataset{Name: full.Name, Graph: full.Graph, Log: grown.Dataset().Log}
	var snapMiB float64
	if fi, err := os.Stat(fullPath); err == nil {
		snapMiB = float64(fi.Size()) / (1 << 20)
	}

	loadOnce := func(b *testing.B, path string) *Planner {
		m, err := LoadModel(combined, path, Options{})
		if err != nil {
			b.Fatal(err)
		}
		return m.NewPlanner()
	}
	rescanOnce := func(b *testing.B) *Planner {
		m, err := LoadModel(combined, paramsPath, opts)
		if err != nil {
			b.Fatal(err)
		}
		return m.NewPlanner()
	}
	speedup := func(path string) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				loaded := loadOnce(b, path)
				loadMs := float64(time.Since(t0).Nanoseconds()) / 1e6
				t0 = time.Now()
				rescanned := rescanOnce(b)
				rescanMs := float64(time.Since(t0).Nanoseconds()) / 1e6
				if loaded.Entries() != rescanned.Entries() {
					b.Fatalf("loaded entries %d != rescanned %d", loaded.Entries(), rescanned.Entries())
				}
				b.ReportMetric(loadMs, "load-ms")
				b.ReportMetric(rescanMs, "rescan-ms")
				b.ReportMetric(rescanMs/loadMs, "speedup")
				b.ReportMetric(snapMiB, "snapshot-MiB")
			}
		}
	}

	mmapOnce := func(b *testing.B) (*Model, *Planner) {
		m, err := LoadModelMapped(combined, fullPath, Options{})
		if err != nil {
			b.Fatal(err)
		}
		return m, m.NewPlanner()
	}

	b.Run("speedup", speedup(fullPath))
	b.Run("speedup-stale", speedup(stalePath))
	b.Run("speedup-mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			m, mp := mmapOnce(b)
			openMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			t0 = time.Now()
			loaded := loadOnce(b, fullPath)
			loadMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			if mp.Entries() != loaded.Entries() {
				b.Fatalf("mapped entries %d != heap-loaded %d", mp.Entries(), loaded.Entries())
			}
			b.ReportMetric(openMs, "mmap-open-ms")
			b.ReportMetric(loadMs, "heap-load-ms")
			b.ReportMetric(loadMs/openMs, "speedup")
			b.ReportMetric(snapMiB, "snapshot-MiB")
			m.Close()
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loadOnce(b, fullPath)
		}
	})
	b.Run("mmap-open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, _ := mmapOnce(b)
			m.Close()
		}
	})
	b.Run("rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rescanOnce(b)
		}
	})
}

// coldStartBench is the per-commit cold-start record the CI bench smoke
// archives as BENCH_coldstart.json: one heap load and one mapped open of
// the same full flixster-small snapshot, with the resident split each
// backend reports.
type coldStartBench struct {
	Commit        string  `json:"commit,omitempty"`
	Date          string  `json:"date"`
	Dataset       string  `json:"dataset"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	Entries       int64   `json:"entries"`
	HeapLoadNs    int64   `json:"heap_load_ns"`
	MmapOpenNs    int64   `json:"mmap_open_ns"`
	Speedup       float64 `json:"speedup"`
	HeapBytes     int64   `json:"heap_bytes"`
	MappedBytes   int64   `json:"mapped_bytes"`
	RowStore      string  `json:"row_store"`
}

// TestWriteColdStartBenchJSON is the CI bench smoke behind the
// BENCH_COLDSTART_JSON env var (the output path; unset skips): it times
// one heap load and one mapped open of a full flixster-small snapshot,
// checks they agree on shape, and writes the record as JSON. BENCH_COMMIT
// stamps the measured revision.
func TestWriteColdStartBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_COLDSTART_JSON")
	if out == "" {
		t.Skip("set BENCH_COLDSTART_JSON=<path> to write the cold-start bench artifact")
	}
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		t.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	ds := &Dataset{Name: full.Name, Graph: full.Graph, Log: full.Log}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := Learn(ds, Options{Lambda: 0.001}).Save(path); err != nil {
		t.Fatal(err)
	}
	var snapBytes int64
	if fi, err := os.Stat(path); err == nil {
		snapBytes = fi.Size()
	}

	t0 := time.Now()
	heap, err := LoadModel(ds, path, Options{})
	heapNs := time.Since(t0).Nanoseconds()
	if err != nil {
		t.Fatal(err)
	}
	t0 = time.Now()
	mm, err := LoadModelMapped(ds, path, Options{})
	openNs := time.Since(t0).Nanoseconds()
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	hp, mp := heap.NewPlanner(), mm.NewPlanner()
	if hp.Entries() != mp.Entries() {
		t.Fatalf("heap load has %d entries, mapped open %d", hp.Entries(), mp.Entries())
	}

	rec := coldStartBench{
		Commit:        os.Getenv("BENCH_COMMIT"),
		Date:          time.Now().UTC().Format(time.RFC3339),
		Dataset:       full.Name,
		SnapshotBytes: snapBytes,
		Entries:       hp.Entries(),
		HeapLoadNs:    heapNs,
		MmapOpenNs:    openNs,
		Speedup:       float64(heapNs) / float64(openNs),
		HeapBytes:     mp.HeapBytes(),
		MappedBytes:   mp.MappedBytes(),
		RowStore:      mp.RowStoreBackend(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold start: heap load %.2f ms, mmap open %.2f ms (%.0fx), %d entries -> %s",
		float64(heapNs)/1e6, float64(openNs)/1e6, rec.Speedup, rec.Entries, out)
}

// BenchmarkCELFParallel measures the shared seed-selection engine's
// worker scaling: cold CELF at k=50 over the full flixster-small preset
// at 1/2/4/8 workers, the workload behind a cold /seeds?k=50. Each
// iteration clones the compacted engine (the microseconds-cheap
// per-request path serve uses) and runs the parallel first-pass +
// lazy-forward selection; seeds and gains are bit-identical at every
// worker count, so the sub-benchmarks differ only in wall clock. The
// "speedup" sub-benchmark runs serial-vs-8-workers one-shot inside the
// loop so the CI -benchtime=1x smoke still reports the ratio (the ≥3x
// acceptance target needs >=8 hardware threads to be observable).
func BenchmarkCELFParallel(b *testing.B) {
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		b.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	credit := core.LearnTimeAware(full.Graph, full.Log)
	base := core.NewEngine(full.Graph, full.Log, core.Options{Lambda: 0.001, Credit: credit})
	base.Compact()
	const k = 50

	run := func(b *testing.B, workers int) celf.Result {
		res := celf.Run(base.Clone(), k, celf.Options{Workers: workers})
		if len(res.Seeds) != k {
			b.Fatalf("selected %d seeds, want %d", len(res.Seeds), k)
		}
		return res
	}

	serialRef := run(b, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := run(b, workers)
				if res.Seeds[0] != serialRef.Seeds[0] || res.Gains[k-1] != serialRef.Gains[k-1] {
					b.Fatal("parallel selection diverged from serial")
				}
			}
		})
	}
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			run(b, 1)
			serialMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			t0 = time.Now()
			run(b, 8)
			parallelMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			b.ReportMetric(serialMs, "serial-ms")
			b.ReportMetric(parallelMs, "parallel8-ms")
			b.ReportMetric(serialMs/parallelMs, "speedup")
		}
	})
}

// BenchmarkPartitionedSpread is the scatter-gather headline (ISSUE 7
// acceptance): sigma_cd of a 32-seed set through the partition
// coordinator at 1, 2, and 4 partitions on the full flixster-small
// preset. Spreads are bit-identical at every partition count (checked
// each iteration); the sub-benchmarks differ only in wall clock. The
// "speedup" sub-benchmark runs 1-vs-4 one-shot inside the loop so the CI
// -benchtime=1x smoke still reports the ratio. The win comes from
// fanning the per-partition clone+commit work over cores, so on a
// single-core runner the expected result is parity (~1x), not a
// regression — the coordinator adds one goroutine handoff per partition,
// nothing quadratic.
func BenchmarkPartitionedSpread(b *testing.B) {
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		b.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	ds := &Dataset{Name: full.Name, Graph: full.Graph, Log: full.Log}
	base := Learn(ds, Options{Lambda: 0.001}).NewPlanner()
	base.Compact()
	numUsers := full.Graph.NumNodes()
	var seeds []NodeID
	for i := 0; i < 32; i++ {
		seeds = append(seeds, NodeID(i*numUsers/32))
	}

	counts := []int{1, 2, 4}
	planners := make(map[int]*PartitionedPlanner, len(counts))
	var ref float64
	for _, n := range counts {
		pp, err := base.Partition(n)
		if err != nil {
			b.Fatal(err)
		}
		s, err := pp.Spread(seeds)
		if err != nil {
			b.Fatal(err)
		}
		if n == counts[0] {
			ref = s
		} else if s != ref {
			b.Fatalf("partitions=%d: spread %b != %b at partitions=%d", n, s, ref, counts[0])
		}
		planners[n] = pp
	}

	for _, n := range counts {
		b.Run(fmt.Sprintf("partitions-%d", n), func(b *testing.B) {
			pp := planners[n]
			for i := 0; i < b.N; i++ {
				s, err := pp.Spread(seeds)
				if err != nil {
					b.Fatal(err)
				}
				if s != ref {
					b.Fatalf("spread drifted: %b != %b", s, ref)
				}
			}
		})
	}
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := planners[1].Spread(seeds); err != nil {
				b.Fatal(err)
			}
			oneMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			t0 = time.Now()
			if _, err := planners[4].Spread(seeds); err != nil {
				b.Fatal(err)
			}
			fourMs := float64(time.Since(t0).Nanoseconds()) / 1e6
			b.ReportMetric(oneMs, "partitions1-ms")
			b.ReportMetric(fourMs, "partitions4-ms")
			b.ReportMetric(oneMs/fourMs, "speedup")
		}
	})
}

// partitionBench is the per-commit scatter-gather record the CI bench
// smoke archives as BENCH_partition.json: the same 32-seed sigma_cd
// through 1 and 4 partitions, with the measured ratio. Speedup below 1x
// on a starved runner is documented parity, not a failure — the
// determinism walls guarantee the answers are bit-identical either way.
type partitionBench struct {
	Commit        string  `json:"commit,omitempty"`
	Date          string  `json:"date"`
	Dataset       string  `json:"dataset"`
	Users         int     `json:"users"`
	Entries       int64   `json:"entries"`
	Seeds         int     `json:"seeds"`
	Partitions1Ns int64   `json:"partitions1_ns"`
	Partitions4Ns int64   `json:"partitions4_ns"`
	Speedup       float64 `json:"speedup"`
	Spread        float64 `json:"spread"`
}

// TestWritePartitionBenchJSON is the CI bench smoke behind the
// BENCH_PARTITION_JSON env var (the output path; unset skips): it times
// the coordinator spread at 1 and 4 partitions, checks the answers are
// bit-identical, and writes the record as JSON. BENCH_COMMIT stamps the
// measured revision.
func TestWritePartitionBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_PARTITION_JSON")
	if out == "" {
		t.Skip("set BENCH_PARTITION_JSON=<path> to write the partition bench artifact")
	}
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		t.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	ds := &Dataset{Name: full.Name, Graph: full.Graph, Log: full.Log}
	base := Learn(ds, Options{Lambda: 0.001}).NewPlanner()
	base.Compact()
	numUsers := full.Graph.NumNodes()
	var seeds []NodeID
	for i := 0; i < 32; i++ {
		seeds = append(seeds, NodeID(i*numUsers/32))
	}
	one, err := base.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := base.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both paths once so the record measures steady state, not
	// first-touch page faults.
	if _, err := one.Spread(seeds); err != nil {
		t.Fatal(err)
	}
	if _, err := four.Spread(seeds); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	s1, err := one.Spread(seeds)
	oneNs := time.Since(t0).Nanoseconds()
	if err != nil {
		t.Fatal(err)
	}
	t0 = time.Now()
	s4, err := four.Spread(seeds)
	fourNs := time.Since(t0).Nanoseconds()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s4 {
		t.Fatalf("spread diverged: %b at 1 partition, %b at 4", s1, s4)
	}
	rec := partitionBench{
		Commit:        os.Getenv("BENCH_COMMIT"),
		Date:          time.Now().UTC().Format(time.RFC3339),
		Dataset:       full.Name,
		Users:         numUsers,
		Entries:       one.Entries(),
		Seeds:         len(seeds),
		Partitions1Ns: oneNs,
		Partitions4Ns: fourNs,
		Speedup:       float64(oneNs) / float64(fourNs),
		Spread:        s1,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("partitioned spread: 1 partition %.2f ms, 4 partitions %.2f ms (%.2fx), spread %.4f -> %s",
		float64(oneNs)/1e6, float64(fourNs)/1e6, rec.Speedup, s1, out)
}

// BenchmarkUCFlixsterSmall measures the UC store on the full
// flixster-small preset: entry count, resident bytes per entry, and Gain
// throughput over every candidate. These are the numbers CHANGES.md
// tracks across UC-representation changes (the map-of-maps layout the
// sorted rows replaced measured 71.5 bytes/entry here; sorted rows 34.4).
func BenchmarkUCFlixsterSmall(b *testing.B) {
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		b.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	credit := core.LearnTimeAware(full.Graph, full.Log)
	engine := core.NewEngine(full.Graph, full.Log, core.Options{Lambda: 0.001, Credit: credit})
	b.ReportMetric(float64(engine.Entries()), "entries")
	b.ReportMetric(float64(engine.ResidentBytes())/(1<<20), "resident-MiB")
	b.ReportMetric(float64(engine.ResidentBytes())/float64(engine.Entries()), "bytes/entry")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Gain(NodeID(i % full.Graph.NumNodes()))
	}
}

// --- approximate tier: RIS serving vs the exact evaluator -------------------

// BenchmarkApproxVsExact contrasts the exact sigma_cd evaluation with a
// warm approximate-tier query at eps=0.1 on the full flixster-small
// preset: the approximate path answers by membership counting over
// pre-drawn RR samples instead of walking every credit DAG, and still
// reports an interval containing the exact value.
func BenchmarkApproxVsExact(b *testing.B) {
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		b.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	ds := &Dataset{Name: full.Name, Graph: full.Graph, Log: full.Log}
	m := Learn(ds, Options{Lambda: 0.001})
	seeds, _ := m.SelectSeeds(10)
	exact := m.Spread(seeds)
	// Warm: the first approximate query grows the pool to its eps target;
	// every later query answers from the shared samples.
	warm, err := m.ApproxSpread(seeds, ApproxOptions{Eps: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	if warm.CILow > exact || exact > warm.CIHigh {
		b.Fatalf("exact spread %g outside reported interval [%g, %g]", exact, warm.CILow, warm.CIHigh)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.Spread(seeds)
		}
	})
	b.Run("approx-eps0.1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ApproxSpread(seeds, ApproxOptions{Eps: 0.1}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(warm.Samples), "samples")
	})
}

type approxBench struct {
	Commit      string  `json:"commit,omitempty"`
	Date        string  `json:"date"`
	Dataset     string  `json:"dataset"`
	Users       int     `json:"users"`
	Seeds       int     `json:"seeds"`
	Samples     int     `json:"samples"`
	ExactNs     int64   `json:"exact_ns"`
	ApproxNs    int64   `json:"approx_ns"`
	Speedup     float64 `json:"speedup"`
	ExactSpread float64 `json:"exact_spread"`
	Estimate    float64 `json:"estimate"`
	CILow       float64 `json:"ci_low"`
	CIHigh      float64 `json:"ci_high"`
	AchievedEps float64 `json:"achieved_eps"`
}

// TestWriteApproxBenchJSON is the CI bench smoke behind the
// BENCH_APPROX_JSON env var (the output path; unset skips): it times the
// exact evaluator against a warm eps=0.1 approximate query on the
// flixster-small preset, checks the reported interval contains the exact
// value and that the approximate path is at least 10x faster, and writes
// the committed-baseline artifact.
func TestWriteApproxBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_APPROX_JSON")
	if out == "" {
		t.Skip("set BENCH_APPROX_JSON=<path> to write the approx bench artifact")
	}
	cfg, ok := datagen.PresetByName("flixster-small")
	if !ok {
		t.Fatal("missing preset")
	}
	full := datagen.Generate(cfg)
	ds := &Dataset{Name: full.Name, Graph: full.Graph, Log: full.Log}
	m := Learn(ds, Options{Lambda: 0.001})
	seeds, _ := m.SelectSeeds(10)
	exact := m.Spread(seeds)
	warm, err := m.ApproxSpread(seeds, ApproxOptions{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CILow > exact || exact > warm.CIHigh {
		t.Fatalf("exact spread %g outside reported interval [%g, %g]", exact, warm.CILow, warm.CIHigh)
	}
	// Steady state on both sides: several reps, best time wins, so a CI
	// scheduler hiccup cannot fail the speedup gate spuriously.
	best := func(f func()) int64 {
		bestNs := int64(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			f()
			if ns := time.Since(t0).Nanoseconds(); ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	exactNs := best(func() { _ = m.Spread(seeds) })
	approxNs := best(func() {
		if _, err := m.ApproxSpread(seeds, ApproxOptions{Eps: 0.1}); err != nil {
			t.Fatal(err)
		}
	})
	speedup := float64(exactNs) / float64(approxNs)
	if speedup < 10 {
		t.Fatalf("approximate tier only %.1fx faster than exact (exact %d ns, approx %d ns), want >= 10x",
			speedup, exactNs, approxNs)
	}
	rec := approxBench{
		Commit:      os.Getenv("BENCH_COMMIT"),
		Date:        time.Now().UTC().Format(time.RFC3339),
		Dataset:     full.Name,
		Users:       full.Graph.NumNodes(),
		Seeds:       len(seeds),
		Samples:     warm.Samples,
		ExactNs:     exactNs,
		ApproxNs:    approxNs,
		Speedup:     speedup,
		ExactSpread: exact,
		Estimate:    warm.Estimate,
		CILow:       warm.CILow,
		CIHigh:      warm.CIHigh,
		AchievedEps: warm.AchievedEps,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("approx vs exact: exact %.2f ms, approx %.3f ms (%.0fx), interval [%.1f, %.1f] contains %.1f -> %s",
		float64(exactNs)/1e6, float64(approxNs)/1e6, speedup, warm.CILow, warm.CIHigh, exact, out)
}
