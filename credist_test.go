package credist

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"credist/internal/datagen"
)

func tinyConfig(seed uint64) datagen.Config {
	return datagen.Config{
		Name: "facade-test", NumUsers: 300, OutDegree: 4, Reciprocity: 0.6,
		NumActions: 200, MeanInfluence: 0.08, MeanDelay: 8,
		SpontaneousPerAction: 2, ThresholdFraction: 0.4, Seed: seed,
	}
}

func TestGeneratePreset(t *testing.T) {
	ds, err := GeneratePreset("flixster-small")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() == 0 || ds.Stats().NumTuples == 0 {
		t.Fatal("empty preset dataset")
	}
	if _, err := GeneratePreset("no-such-preset"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSplitRatio(t *testing.T) {
	ds := Generate(tinyConfig(1))
	train, test := ds.Split()
	tr, te := train.Stats().NumActions, test.Stats().NumActions
	if tr+te != ds.Stats().NumActions {
		t.Fatal("split lost actions")
	}
	if te == 0 || tr < 3*te {
		t.Fatalf("split = %d/%d, want ~80/20", tr, te)
	}
}

func TestLearnSelectPredict(t *testing.T) {
	ds := Generate(tinyConfig(2))
	model := Learn(ds, Options{Lambda: 0.001})
	seeds, gains := model.SelectSeeds(5)
	if len(seeds) != 5 || len(gains) != 5 {
		t.Fatalf("seeds/gains = %d/%d", len(seeds), len(gains))
	}
	for i := 1; i < len(gains); i++ {
		if gains[i] > gains[i-1]+1e-9 {
			t.Fatalf("gains not non-increasing: %v", gains)
		}
	}
	spread := model.Spread(seeds)
	sum := 0.0
	for _, g := range gains {
		sum += g
	}
	// Exact evaluator spread is at least the truncated engine's estimate,
	// and close to it.
	if spread < sum-1e-6 || spread > sum*1.25+1 {
		t.Fatalf("spread %g far from gain sum %g", spread, sum)
	}
	// More seeds never hurt.
	more, _ := model.SelectSeeds(10)
	if model.Spread(more) < spread-1e-9 {
		t.Fatal("spread decreased with more seeds")
	}
}

func TestSimpleVsTimeAwareOptions(t *testing.T) {
	ds := Generate(tinyConfig(3))
	ta := Learn(ds, Options{})
	simple := Learn(ds, Options{SimpleCredit: true})
	seeds, _ := ta.SelectSeeds(3)
	// The simple rule gives more credit per hop, so it predicts at least
	// as much spread for any fixed set.
	if simple.Spread(seeds) < ta.Spread(seeds)-1e-9 {
		t.Fatalf("simple %g < time-aware %g", simple.Spread(seeds), ta.Spread(seeds))
	}
	if infl := ta.Influenceability(seeds[0]); infl < 0 || infl > 1 {
		t.Fatalf("influenceability %g", infl)
	}
	if got := simple.Influenceability(seeds[0]); got != 1 {
		t.Fatalf("simple-credit influenceability = %g, want 1", got)
	}
}

func TestPairCreditAndInitiators(t *testing.T) {
	ds := Generate(tinyConfig(4))
	model := Learn(ds, Options{})
	inits := Initiators(ds, 0)
	if len(inits) == 0 {
		t.Fatal("no initiators")
	}
	// Self-credit: kappa_{v,v} = 1 for any user who acted.
	v := inits[0]
	if got := model.PairCredit(v, v); math.Abs(got-1) > 1e-9 {
		t.Fatalf("kappa_vv = %g", got)
	}
}

func TestBaselineSeeds(t *testing.T) {
	ds := Generate(tinyConfig(5))
	hd := HighDegreeSeeds(ds, 7)
	pr := PageRankSeeds(ds, 7)
	if len(hd) != 7 || len(pr) != 7 {
		t.Fatalf("baseline sizes %d/%d", len(hd), len(pr))
	}
	seen := map[NodeID]bool{}
	for _, u := range hd {
		if seen[u] {
			t.Fatal("duplicate high-degree seed")
		}
		seen[u] = true
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := Generate(tinyConfig(6))
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.graph")
	lp := filepath.Join(dir, "l.log")
	if err := SaveDataset(ds, gp, lp); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset("back", gp, lp)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUsers() != ds.NumUsers() {
		t.Fatalf("users %d != %d", back.NumUsers(), ds.NumUsers())
	}
	if back.Stats().NumTuples != ds.Stats().NumTuples {
		t.Fatalf("tuples %d != %d", back.Stats().NumTuples, ds.Stats().NumTuples)
	}
	// Models learned from the round-tripped dataset agree.
	s1, _ := Learn(ds, Options{}).SelectSeeds(3)
	s2, _ := Learn(back, Options{}).SelectSeeds(3)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("seeds diverged after round trip: %v vs %v", s1, s2)
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	if _, err := LoadDataset("x", "/nonexistent/g", "/nonexistent/l"); err == nil {
		t.Fatal("missing files accepted")
	}
}

func TestSelectionResultExtras(t *testing.T) {
	ds := Generate(tinyConfig(7))
	model := Learn(ds, Options{})
	res := model.Selection(4)
	if len(res.Seeds) != 4 || res.Lookups < 4 {
		t.Fatalf("selection = %+v", res)
	}
	if len(res.Elapsed) != 4 {
		t.Fatalf("elapsed per seed missing: %d", len(res.Elapsed))
	}
}

// TestModelIngestMatchesRelearnFreeReference: ingesting a held-out action
// tail yields, bit for bit, the model one gets by binding the same frozen
// parameters (via SaveParams/LoadModel) to the combined dataset — and the
// incrementally extended planner matches a freshly scanned one.
func TestModelIngestMatchesRelearnFreeReference(t *testing.T) {
	full := Generate(tinyConfig(9))
	n := full.Log.NumActions()
	headN := n - n/20
	headDS := &Dataset{Name: "head", Graph: full.Graph, Log: full.Log.Prefix(headN)}
	var tail []Tuple
	for a := headN; a < n; a++ {
		tail = append(tail, full.Log.Action(ActionID(a))...)
	}

	model := Learn(headDS, Options{Lambda: 0.001})
	base := model.NewPlanner()
	base.Compact()

	grown, err := model.Ingest(tail)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if grown.Dataset().Log.NumActions() != n {
		t.Fatalf("ingested model has %d actions, want %d", grown.Dataset().Log.NumActions(), n)
	}
	// The receiver still answers from the head log.
	if model.Dataset().Log.NumActions() != headN {
		t.Fatalf("receiver mutated: %d actions", model.Dataset().Log.NumActions())
	}

	path := filepath.Join(t.TempDir(), "params.txt")
	if err := model.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	ref, err := LoadModel(&Dataset{Name: "combined", Graph: full.Graph, Log: grown.Dataset().Log}, path, Options{Lambda: 0.001})
	if err != nil {
		t.Fatal(err)
	}

	seeds, _ := ref.SelectSeeds(4)
	if a, b := grown.Spread(seeds), ref.Spread(seeds); a != b {
		t.Fatalf("ingested Spread %b != reference %b", a, b)
	}
	gs, ggains := grown.SelectSeeds(4)
	for i := range seeds {
		if gs[i] != seeds[i] {
			t.Fatalf("ingested model selects %v, reference %v", gs, seeds)
		}
	}

	planner, err := grown.ExtendPlanner(base)
	if err != nil {
		t.Fatalf("ExtendPlanner: %v", err)
	}
	if planner.NumActions() != n || planner.DeltaActions() != n-headN {
		t.Fatalf("planner covers %d actions (%d delta)", planner.NumActions(), planner.DeltaActions())
	}
	fresh := grown.NewPlanner()
	for _, s := range seeds {
		if a, b := planner.Gain(s), fresh.Gain(s); a != b {
			t.Fatalf("extended planner Gain(%d) %b != fresh %b", s, a, b)
		}
	}
	res := planner.Clone().Select(4)
	for i := range res.Seeds {
		if res.Seeds[i] != gs[i] || res.Gains[i] != ggains[i] {
			t.Fatalf("extended planner CELF diverged at %d", i)
		}
	}

	// Guard rails: planners from a different parameter lineage are refused,
	// as are tuples outside the graph universe.
	other := Learn(headDS, Options{Lambda: 0.001})
	if _, err := grown.ExtendPlanner(other.NewPlanner()); err == nil {
		t.Fatal("foreign planner accepted")
	}
	// The simple-credit rule is parameterless (every model holds the same
	// credit value), so the lineage check falls to the truncation threshold.
	sA := Learn(headDS, Options{SimpleCredit: true, Lambda: 0.5})
	sB := Learn(headDS, Options{SimpleCredit: true, Lambda: 0.001})
	sGrown, err := sB.Ingest(tail)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sGrown.ExtendPlanner(sA.NewPlanner()); err == nil {
		t.Fatal("simple-credit planner with mismatched lambda accepted")
	}
	if _, err := grown.Ingest([]Tuple{{User: NodeID(full.NumUsers()), Action: ActionID(n), Time: 1}}); err == nil {
		t.Fatal("tuple beyond graph universe accepted")
	}
}

// TestModelSnapshotSaveLoadBitIdentical is the cold-start acceptance
// test at the facade level: a model saved as a binary snapshot over a log
// prefix, reloaded against the combined dataset (which appends only the
// held-out tail), answers Spread, batched Gains, and CELF selection with
// exactly the bits of the reference model that ingested the same tail —
// which PR 3 proved bit-identical to a from-scratch rescan.
func TestModelSnapshotSaveLoadBitIdentical(t *testing.T) {
	full := Generate(tinyConfig(10))
	n := full.Log.NumActions()
	headN := n - n/20
	headDS := &Dataset{Name: "head", Graph: full.Graph, Log: full.Log.Prefix(headN)}
	var tail []Tuple
	for a := headN; a < n; a++ {
		tail = append(tail, full.Log.Action(ActionID(a))...)
	}

	for _, opts := range []Options{{Lambda: 0.001}, {SimpleCredit: true, Lambda: 0.001}} {
		model := Learn(headDS, opts)
		ref, err := model.Ingest(tail)
		if err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		path := filepath.Join(t.TempDir(), "model.bin")
		if err := model.Save(path); err != nil {
			t.Fatalf("Save: %v", err)
		}

		combined := &Dataset{Name: "combined", Graph: full.Graph, Log: ref.Dataset().Log}
		loaded, err := LoadModel(combined, path, Options{})
		if err != nil {
			t.Fatalf("LoadModel: %v", err)
		}
		if loaded.Options() != opts {
			t.Fatalf("loaded options %+v, want %+v", loaded.Options(), opts)
		}
		// The loaded planner's delta is exactly the appended tail.
		if p := loaded.NewPlanner(); p.NumActions() != n || p.DeltaActions() != n-headN {
			t.Fatalf("loaded planner covers %d actions (%d delta), want %d (%d)",
				p.NumActions(), p.DeltaActions(), n, n-headN)
		}

		seeds, gains := ref.SelectSeeds(4)
		ls, lg := loaded.SelectSeeds(4)
		for i := range seeds {
			if ls[i] != seeds[i] || lg[i] != gains[i] {
				t.Fatalf("opts %+v: selection diverged at %d: (%d, %b) vs (%d, %b)",
					opts, i, ls[i], lg[i], seeds[i], gains[i])
			}
		}
		if a, b := loaded.Spread(seeds), ref.Spread(seeds); a != b {
			t.Fatalf("opts %+v: Spread %b != reference %b", opts, a, b)
		}
		cands := []NodeID{0, 1, 2, 3, 4, 5}
		ga, gb := loaded.Gains(seeds[:2], cands), ref.Gains(seeds[:2], cands)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("opts %+v: Gains[%d] %b != %b", opts, i, ga[i], gb[i])
			}
		}

		// Explicit matching options are accepted; mismatched ones are not.
		if _, err := LoadModel(combined, path, opts); err != nil {
			t.Fatalf("matching options rejected: %v", err)
		}
		if _, err := LoadModel(combined, path, Options{Lambda: 0.5, SimpleCredit: opts.SimpleCredit}); err == nil {
			t.Fatal("mismatched lambda accepted")
		}
	}
}

// TestLoadModelSnapshotLineageErrors exercises the refusal paths: a
// snapshot must not bind to a dataset it was not built from.
func TestLoadModelSnapshotLineageErrors(t *testing.T) {
	ds := Generate(tinyConfig(11))
	model := Learn(ds, Options{Lambda: 0.001})
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}

	// Different graph (fresh generation, different seed).
	other := Generate(tinyConfig(12))
	if _, err := LoadModel(other, path, Options{}); err == nil {
		t.Error("foreign dataset accepted")
	}
	// Log shorter than the snapshot's scanned prefix.
	short := &Dataset{Name: "short", Graph: ds.Graph, Log: ds.Log.Prefix(ds.Log.NumActions() - 1)}
	if _, err := LoadModel(short, path, Options{}); err == nil {
		t.Error("truncated log accepted")
	}
	// Corrupt file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	bad := filepath.Join(t.TempDir(), "corrupt.bin")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(ds, bad, Options{}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

// TestWriteSnapshotPlannerValidation covers the explicit-planner path the
// serving layer uses to checkpoint its live planner.
func TestWriteSnapshotPlannerValidation(t *testing.T) {
	ds := Generate(tinyConfig(13))
	model := Learn(ds, Options{Lambda: 0.001})
	p := model.NewPlanner()

	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.WriteSnapshot(f, p, nil); err != nil {
		t.Fatalf("WriteSnapshot(planner): %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(ds, path, Options{})
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	s1, _ := model.SelectSeeds(3)
	s2, _ := loaded.SelectSeeds(3)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("selection diverged: %v vs %v", s2, s1)
		}
	}

	// A planner from another model lineage is refused.
	foreign := Learn(ds, Options{Lambda: 0.001})
	if err := model.WriteSnapshot(io.Discard, foreign.NewPlanner(), nil); err == nil {
		t.Error("foreign planner accepted")
	}
	// A planner with committed seeds is refused.
	committed := model.NewPlanner()
	committed.Add(s1[0])
	if err := model.WriteSnapshot(io.Discard, committed, nil); err == nil {
		t.Error("planner with committed seeds accepted")
	}
}

// TestLoadModelMappedBitIdentical: the mmap-served model is the heap
// model, bit for bit — Spread, batched Gains, CELF selection, and the
// tail-append path all agree — while its planners report the mmap
// backend with the footprint on the mapped side of the split.
func TestLoadModelMappedBitIdentical(t *testing.T) {
	full := Generate(tinyConfig(12))
	n := full.Log.NumActions()
	headN := n - n/20
	headDS := &Dataset{Name: "head", Graph: full.Graph, Log: full.Log.Prefix(headN)}
	model := Learn(headDS, Options{Lambda: 0.001})
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}

	combined := &Dataset{Name: "combined", Graph: full.Graph, Log: full.Log}
	heap, err := LoadModel(combined, path, Options{})
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	mapped, err := LoadModelMapped(combined, path, Options{})
	if err != nil {
		t.Fatalf("LoadModelMapped: %v", err)
	}
	defer mapped.Close()
	if mapped.Options() != heap.Options() {
		t.Fatalf("options %+v, want %+v", mapped.Options(), heap.Options())
	}

	p := mapped.NewPlanner()
	if p.NumActions() != n || p.DeltaActions() != n-headN {
		t.Fatalf("mapped planner covers %d actions (%d delta), want %d (%d)",
			p.NumActions(), p.DeltaActions(), n, n-headN)
	}
	if p.RowStoreBackend() == "mmap" {
		if p.MappedBytes() == 0 {
			t.Fatal("mmap backend with zero mapped bytes")
		}
		if p.ResidentBytes() != p.HeapBytes()+p.MappedBytes() {
			t.Fatal("resident bytes is not the heap/mapped sum")
		}
	}

	seeds, gains := heap.SelectSeeds(4)
	ms, mg := mapped.SelectSeeds(4)
	for i := range seeds {
		if ms[i] != seeds[i] || mg[i] != gains[i] {
			t.Fatalf("selection diverged at %d: (%d, %b) vs (%d, %b)", i, ms[i], mg[i], seeds[i], gains[i])
		}
	}
	if a, b := mapped.Spread(seeds), heap.Spread(seeds); a != b {
		t.Fatalf("Spread %b != heap %b", a, b)
	}
	cands := []NodeID{0, 1, 2, 3, 4, 5}
	ga, gb := mapped.Gains(seeds[:2], cands), heap.Gains(seeds[:2], cands)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("Gains[%d] %b != %b", i, ga[i], gb[i])
		}
	}

	// Only binary snapshots can be mapped: text parameters are refused.
	params := filepath.Join(t.TempDir(), "params.txt")
	if err := model.SaveParams(params); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelMapped(combined, params, Options{}); err == nil {
		t.Fatal("LoadModelMapped accepted a text parameter file")
	}
	// Closing a heap-loaded or nil model is a harmless no-op.
	if err := heap.Close(); err != nil {
		t.Fatalf("Close on heap model: %v", err)
	}
	if err := (*Model)(nil).Close(); err != nil {
		t.Fatalf("Close on nil model: %v", err)
	}
}

func TestModelSaveLoadParams(t *testing.T) {
	ds := Generate(tinyConfig(8))
	model := Learn(ds, Options{})
	path := filepath.Join(t.TempDir(), "params.txt")
	if err := model.SaveParams(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(ds, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeds, _ := model.SelectSeeds(4)
	s2, _ := back.SelectSeeds(4)
	for i := range seeds {
		if seeds[i] != s2[i] {
			t.Fatalf("restored model selects %v, original %v", s2, seeds)
		}
	}
	if a, b := model.Spread(seeds), back.Spread(seeds); a != b {
		t.Fatalf("spreads differ after reload: %g vs %g", a, b)
	}
	// Simple-credit models have nothing to save.
	if err := Learn(ds, Options{SimpleCredit: true}).SaveParams(path); err == nil {
		t.Fatal("simple-credit SaveParams should fail")
	}
	if _, err := LoadModel(ds, "/nonexistent", Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
